"""Interval (abstract) evaluation of HDL constant expressions.

The concrete evaluator (:func:`repro.hdl.expr.evaluate`) answers "what is
this width at *one* parameter binding".  The DSE needs the complementary
question: "what can this width be over a whole *region* of the space" —
that is what turns per-point elaboration failures into closed-form
infeasible subranges the pre-flight gate can reject without ever touching
the elaboration rules.

The domain is a classic integer interval lattice with two refinements:

- ends may be unbounded (``None`` = ±∞), so bitwise operators and unknown
  names can degrade gracefully to *top* instead of crashing the analysis;
- every result carries failure information: ``may_fail`` records that the
  concrete evaluator *could* raise :class:`~repro.hdl.expr.EvalError`
  somewhere in the region, and a ``None`` interval (bottom) records that
  it raises *everywhere* in the region.

Soundness contract, relied on by :mod:`repro.analysis.dataflow_rules`:
for every concrete environment drawn from the abstract one,

- if the abstract result is bottom, concrete evaluation raises;
- otherwise the concrete value lies inside ``interval`` whenever concrete
  evaluation succeeds, and it can only raise when ``may_fail`` is True.

Only *definite* facts (bottom, or an interval wholly inside/outside a
bound) may be used to prune; ``may_fail`` alone never rejects a point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

from repro.hdl import expr as E

__all__ = ["Interval", "AbstractInt", "evaluate_abstract"]

# Exponent/shift magnitudes beyond this are treated as unknown rather than
# materialized — interface arithmetic never needs 2**100000, and a single
# adversarial width expression must not stall the analysis.
_POW_LIMIT = 4096


@dataclass(frozen=True)
class Interval:
    """Closed integer interval; ``None`` ends mean -∞ / +∞."""

    lo: Optional[int]
    hi: Optional[int]

    def __post_init__(self) -> None:
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            raise ValueError(f"inverted interval [{self.lo}, {self.hi}]")

    # -- constructors ---------------------------------------------------

    @classmethod
    def point(cls, value: int) -> "Interval":
        return cls(int(value), int(value))

    @classmethod
    def span(cls, a: int, b: int) -> "Interval":
        a, b = int(a), int(b)
        return cls(min(a, b), max(a, b))

    @classmethod
    def top(cls) -> "Interval":
        return cls(None, None)

    # -- predicates -----------------------------------------------------

    def is_point(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def definitely_lt(self, bound: int) -> bool:
        """True when every member is < ``bound``."""
        return self.hi is not None and self.hi < bound

    def definitely_ge(self, bound: int) -> bool:
        return self.lo is not None and self.lo >= bound

    def definitely_nonzero(self) -> bool:
        return not self.contains(0)

    def definitely_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    # -- lattice --------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return Interval(lo, hi)

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class AbstractInt:
    """One abstract evaluation result: value interval + failure knowledge.

    ``interval is None`` is *bottom*: concrete evaluation raises for every
    environment in the region (and ``may_fail`` is then always True).
    """

    interval: Optional[Interval]
    may_fail: bool = False

    def __post_init__(self) -> None:
        if self.interval is None and not self.may_fail:
            object.__setattr__(self, "may_fail", True)

    # -- constructors ---------------------------------------------------

    @classmethod
    def exact(cls, value: int) -> "AbstractInt":
        return cls(Interval.point(value))

    @classmethod
    def of(cls, lo: Optional[int], hi: Optional[int]) -> "AbstractInt":
        return cls(Interval(lo, hi))

    @classmethod
    def top(cls, may_fail: bool = False) -> "AbstractInt":
        return cls(Interval.top(), may_fail)

    @classmethod
    def bottom(cls) -> "AbstractInt":
        return cls(None, True)

    # -- predicates -----------------------------------------------------

    def definitely_fails(self) -> bool:
        return self.interval is None

    def ok(self) -> "AbstractInt":
        """Identity helper for readability at call sites."""
        return self

    def __str__(self) -> str:
        if self.interval is None:
            return "<fails>"
        mark = "?" if self.may_fail else ""
        return f"{self.interval}{mark}"


# ---------------------------------------------------------------------------
# interval arithmetic helpers
# ---------------------------------------------------------------------------


def _corners(
    a: Interval, b: Interval, op: Callable[[int, int], int]
) -> Optional[Interval]:
    """Apply a corner-monotone operator; None when an end is unbounded."""
    if a.lo is None or a.hi is None or b.lo is None or b.hi is None:
        return None
    values = [op(x, y) for x in (a.lo, a.hi) for y in (b.lo, b.hi)]
    return Interval(min(values), max(values))


def _add(a: Interval, b: Interval) -> Interval:
    lo = None if a.lo is None or b.lo is None else a.lo + b.lo
    hi = None if a.hi is None or b.hi is None else a.hi + b.hi
    return Interval(lo, hi)


def _neg(a: Interval) -> Interval:
    lo = None if a.hi is None else -a.hi
    hi = None if a.lo is None else -a.lo
    return Interval(lo, hi)


def _sub(a: Interval, b: Interval) -> Interval:
    return _add(a, _neg(b))


def _mul(a: Interval, b: Interval) -> Interval:
    out = _corners(a, b, lambda x, y: x * y)
    return out if out is not None else Interval.top()


def _trunc_div(x: int, y: int) -> int:
    return int(x / y) if abs(x) < 2**52 and abs(y) < 2**52 else -(-x // y) if (
        (x < 0) != (y < 0)
    ) else x // y


def _div(a: Interval, b: Interval) -> AbstractInt:
    """Truncating division, Verilog semantics (toward zero)."""
    if b.definitely_zero():
        return AbstractInt.bottom()
    may_fail = b.contains(0)
    # Split the divisor around zero; corner-evaluate each signed piece.
    pieces: list[Interval] = []
    if b.hi is None or b.hi >= 1:
        pieces.append(Interval(max(1, b.lo) if b.lo is not None else 1, b.hi))
    if b.lo is None or b.lo <= -1:
        pieces.append(Interval(b.lo, min(-1, b.hi) if b.hi is not None else -1))
    result: Optional[Interval] = None
    for piece in pieces:
        part = _corners(a, piece, _trunc_div)
        if part is None:
            return AbstractInt.top(may_fail)
        result = part if result is None else result.join(part)
    if result is None:  # divisor region empty after the split (unreachable)
        return AbstractInt.bottom()
    return AbstractInt(result, may_fail)


def _mod(a: Interval, b: Interval) -> AbstractInt:
    """Python ``%`` semantics (the concrete evaluator's choice)."""
    if b.definitely_zero():
        return AbstractInt.bottom()
    may_fail = b.contains(0)
    if b.lo is None or b.hi is None:
        return AbstractInt.top(may_fail)
    # Python's result takes the divisor's sign, magnitude below |divisor|.
    hi = max(0, b.hi - 1) if b.hi >= 1 else 0
    lo = min(0, b.lo + 1) if b.lo <= -1 else 0
    return AbstractInt(Interval(lo, hi), may_fail)


def _rem(a: Interval, b: Interval) -> AbstractInt:
    """VHDL ``rem``: sign of the dividend, magnitude below |divisor|."""
    if b.definitely_zero():
        return AbstractInt.bottom()
    may_fail = b.contains(0)
    if b.lo is None or b.hi is None:
        return AbstractInt.top(may_fail)
    magnitude = max(abs(b.lo), abs(b.hi)) - 1
    lo, hi = -magnitude, magnitude
    if a.lo is not None and a.lo >= 0:
        lo = 0
    if a.hi is not None and a.hi <= 0:
        hi = 0
    return AbstractInt(Interval(min(lo, hi), max(lo, hi)), may_fail)


def _pow(a: Interval, b: Interval) -> AbstractInt:
    if b.hi is not None and b.hi < 0:
        return AbstractInt.bottom()  # negative exponent raises everywhere
    may_fail = b.lo is None or b.lo < 0
    if (
        a.lo is None
        or a.hi is None
        or b.hi is None
        or b.hi > _POW_LIMIT
        or max(abs(a.lo), abs(a.hi)) > _POW_LIMIT
    ):
        # Outside the materialized region the concrete evaluator may hit
        # its folding bit limit, so the result must admit failure.
        return AbstractInt.top(True)
    b_lo = max(0, b.lo if b.lo is not None else 0)
    candidates = [x**y for x in (a.lo, a.hi) for y in (b_lo, b.hi)]
    if a.lo < 0:
        # Parity flips the sign; odd/even neighbours of the corners bound it.
        candidates += [
            x**y
            for x in (a.lo, a.hi)
            for y in (min(b_lo + 1, b.hi),)
        ]
        candidates += [0] if a.hi >= 0 else []
    if a.lo <= 0 <= a.hi:
        candidates.append(0)
    if b_lo == 0:
        candidates.append(1)
    return AbstractInt(Interval(min(candidates), max(candidates)), may_fail)


def _shift(a: Interval, b: Interval, left: bool) -> AbstractInt:
    # Python raises a bare ValueError (not EvalError) on negative shift
    # counts, so the concrete checker *crashes* rather than rejects there.
    # Stay at top/may_fail so the static layer never claims a rejection
    # the checker would not deliver.
    may_fail = b.lo is None or b.lo < 0
    if b.hi is not None and b.hi < 0:
        return AbstractInt.top(True)
    if a.lo is None or a.hi is None or b.hi is None or b.hi > _POW_LIMIT:
        # Beyond the materialized region the concrete evaluator may hit
        # its folding bit limit, so the result must admit failure.
        return AbstractInt.top(True)
    b_lo = max(0, b.lo if b.lo is not None else 0)
    if left and max(abs(a.lo), abs(a.hi)).bit_length() + b.hi > E.FOLD_BIT_LIMIT:
        return AbstractInt.top(True)
    op: Callable[[int, int], int] = (
        (lambda x, y: x << y) if left else (lambda x, y: x >> y)
    )
    values = [op(x, y) for x in (a.lo, a.hi) for y in (b_lo, b.hi)]
    return AbstractInt(Interval(min(values), max(values)), may_fail)


def _bitwise(a: Interval, b: Interval, op: str) -> AbstractInt:
    if a.is_point() and b.is_point():
        assert a.lo is not None and b.lo is not None
        fn = {"&": int.__and__, "|": int.__or__, "^": int.__xor__}[op]
        return AbstractInt.exact(fn(a.lo, b.lo))
    if (
        a.lo is not None
        and b.lo is not None
        and a.lo >= 0
        and b.lo >= 0
        and a.hi is not None
        and b.hi is not None
    ):
        if op == "&":
            return AbstractInt.of(0, min(a.hi, b.hi))
        # For non-negative x, y:  x|y <= x+y  and  x^y <= x+y.
        lo = max(a.lo, b.lo) if op == "|" else 0
        return AbstractInt.of(lo, a.hi + b.hi)
    return AbstractInt.top()


def _truthiness(v: Interval) -> Optional[bool]:
    """True / False when definite, None when the region straddles zero."""
    if v.definitely_nonzero():
        return True
    if v.definitely_zero():
        return False
    return None


def _compare(op: str, a: Interval, b: Interval) -> AbstractInt:
    def definite(result: Optional[bool]) -> AbstractInt:
        if result is None:
            return AbstractInt.of(0, 1)
        return AbstractInt.exact(int(result))

    def lt(x: Interval, y: Interval) -> Optional[bool]:
        if x.hi is not None and y.lo is not None and x.hi < y.lo:
            return True
        if x.lo is not None and y.hi is not None and x.lo >= y.hi:
            return False
        return None

    def le(x: Interval, y: Interval) -> Optional[bool]:
        if x.hi is not None and y.lo is not None and x.hi <= y.lo:
            return True
        if x.lo is not None and y.hi is not None and x.lo > y.hi:
            return False
        return None

    if op == "<":
        return definite(lt(a, b))
    if op == "<=":
        return definite(le(a, b))
    if op == ">":
        return definite(lt(b, a))
    if op == ">=":
        return definite(le(b, a))
    if op in ("=", "=="):
        if a.is_point() and b.is_point():
            return AbstractInt.exact(int(a.lo == b.lo))
        if _disjoint(a, b):
            return AbstractInt.exact(0)
        return AbstractInt.of(0, 1)
    # "/=" / "!="
    if a.is_point() and b.is_point():
        return AbstractInt.exact(int(a.lo != b.lo))
    if _disjoint(a, b):
        return AbstractInt.exact(1)
    return AbstractInt.of(0, 1)


def _disjoint(a: Interval, b: Interval) -> bool:
    if a.hi is not None and b.lo is not None and a.hi < b.lo:
        return True
    if b.hi is not None and a.lo is not None and b.hi < a.lo:
        return True
    return False


def _clog2(a: Interval) -> AbstractInt:
    """ceil(log2(n)) over an interval; domain is n >= 1."""
    if a.hi is not None and a.hi <= 0:
        return AbstractInt.bottom()
    may_fail = a.lo is None or a.lo <= 0
    lo_in = max(1, a.lo if a.lo is not None else 1)
    lo = (lo_in - 1).bit_length()
    hi = None if a.hi is None else (a.hi - 1).bit_length()
    return AbstractInt(Interval(lo, hi), may_fail)


def _minmax(args: Sequence[Interval], biggest: bool) -> Interval:
    if biggest:
        lo = _none_max([a.lo for a in args])  # max of lows (None = -inf loses)
        hi = None if any(a.hi is None for a in args) else max(
            a.hi for a in args if a.hi is not None
        )
        return Interval(lo, hi)
    lo = None if any(a.lo is None for a in args) else min(
        a.lo for a in args if a.lo is not None
    )
    hi = _none_min([a.hi for a in args])
    return Interval(lo, hi)


def _none_max(values: Sequence[Optional[int]]) -> Optional[int]:
    known = [v for v in values if v is not None]
    if len(known) != len(values) and not known:
        return None
    # max over -inf entries is just max over the known ones; if *any* entry
    # is known, -inf entries cannot raise the maximum.
    return max(known) if known else None


def _none_min(values: Sequence[Optional[int]]) -> Optional[int]:
    known = [v for v in values if v is not None]
    return min(known) if known else None


def _abs(a: Interval) -> Interval:
    if a.lo is not None and a.lo >= 0:
        return a
    if a.hi is not None and a.hi <= 0:
        return _neg(a)
    hi = None
    if a.lo is not None and a.hi is not None:
        hi = max(-a.lo, a.hi)
    return Interval(0, hi)


# ---------------------------------------------------------------------------
# the abstract evaluator
# ---------------------------------------------------------------------------


def evaluate_abstract(
    expr: E.Expr, env: Mapping[str, AbstractInt] | None = None
) -> AbstractInt:
    """Abstractly evaluate ``expr`` over the region described by ``env``.

    ``env`` maps parameter names (matched case-insensitively, like the
    concrete evaluator) to :class:`AbstractInt` regions.  Names missing
    from the environment are *definitely unbound* — the concrete
    evaluator raises for them at every point, so the result is bottom.
    Callers that cannot prove absence should bind the name to
    ``AbstractInt.top(may_fail=True)`` instead.
    """
    env = env or {}
    folded = {k.lower(): v for k, v in env.items()}

    def fail_through(*parts: AbstractInt) -> Optional[AbstractInt]:
        """Eager-evaluation failure propagation (mirrors ``ev``'s order)."""
        for part in parts:
            if part.definitely_fails():
                return AbstractInt.bottom()
        return None

    def may(*parts: AbstractInt) -> bool:
        return any(p.may_fail for p in parts)

    def ev(node: E.Expr) -> AbstractInt:
        if isinstance(node, E.Num):
            return AbstractInt.exact(node.value)
        if isinstance(node, E.StrLit):
            lowered = node.value.lower()
            if lowered == "true":
                return AbstractInt.exact(1)
            if lowered == "false":
                return AbstractInt.exact(0)
            return AbstractInt.bottom()  # non-boolean string in int context
        if isinstance(node, E.Name):
            found = folded.get(node.ident.lower())
            if found is None:
                return AbstractInt.bottom()
            return found
        if isinstance(node, E.UnOp):
            v = ev(node.operand)
            failed = fail_through(v)
            if failed is not None:
                return failed
            assert v.interval is not None
            if node.op == "-":
                return AbstractInt(_neg(v.interval), v.may_fail)
            if node.op == "+":
                return v
            if node.op in ("not", "!"):
                truth = _truthiness(v.interval)
                if truth is None:
                    return AbstractInt(Interval(0, 1), v.may_fail)
                return AbstractInt(Interval.point(int(not truth)), v.may_fail)
            if node.op == "~":
                # ~v == -v - 1
                return AbstractInt(
                    _sub(_neg(v.interval), Interval.point(1)), v.may_fail
                )
            return AbstractInt.bottom()  # unknown operator raises everywhere
        if isinstance(node, E.BinOp):
            lv, rv = ev(node.left), ev(node.right)
            failed = fail_through(lv, rv)
            if failed is not None:
                return failed
            assert lv.interval is not None and rv.interval is not None
            a, b = lv.interval, rv.interval
            mf = may(lv, rv)
            op = node.op
            if op == "+":
                return AbstractInt(_add(a, b), mf)
            if op == "-":
                return AbstractInt(_sub(a, b), mf)
            if op == "*":
                return AbstractInt(_mul(a, b), mf)
            if op == "/":
                return _with_may(_div(a, b), mf)
            if op in ("%", "mod"):
                return _with_may(_mod(a, b), mf)
            if op == "rem":
                return _with_may(_rem(a, b), mf)
            if op == "**":
                return _with_may(_pow(a, b), mf)
            if op == "<<":
                return _with_may(_shift(a, b, left=True), mf)
            if op == ">>":
                return _with_may(_shift(a, b, left=False), mf)
            if op in ("and", "&&", "or", "||"):
                ta, tb = _truthiness(a), _truthiness(b)
                conj = op in ("and", "&&")
                if conj:
                    if ta is False or tb is False:
                        return AbstractInt(Interval.point(0), mf)
                    if ta is True and tb is True:
                        return AbstractInt(Interval.point(1), mf)
                else:
                    if ta is True or tb is True:
                        return AbstractInt(Interval.point(1), mf)
                    if ta is False and tb is False:
                        return AbstractInt(Interval.point(0), mf)
                return AbstractInt(Interval(0, 1), mf)
            if op in ("&", "|", "^"):
                return _with_may(_bitwise(a, b, op), mf)
            if op in ("=", "==", "/=", "!=", "<", "<=", ">", ">="):
                return _with_may(_compare(op, a, b), mf)
            return AbstractInt.bottom()  # unknown operator raises everywhere
        if isinstance(node, E.Cond):
            cv = ev(node.cond)
            failed = fail_through(cv)
            if failed is not None:
                return failed
            assert cv.interval is not None
            truth = _truthiness(cv.interval)
            if truth is True:
                branch = ev(node.then)
                return _with_may(branch, cv.may_fail)
            if truth is False:
                branch = ev(node.other)
                return _with_may(branch, cv.may_fail)
            then, other = ev(node.then), ev(node.other)
            if then.definitely_fails() and other.definitely_fails():
                return AbstractInt.bottom()
            joined: Optional[Interval]
            if then.interval is None:
                joined = other.interval
            elif other.interval is None:
                joined = then.interval
            else:
                joined = then.interval.join(other.interval)
            return AbstractInt(
                joined,
                cv.may_fail
                or then.may_fail
                or other.may_fail
                or then.interval is None
                or other.interval is None,
            )
        if isinstance(node, E.Call):
            name = node.func.lower()
            if name not in ("$clog2", "clog2", "log2ceil", "maximum", "minimum",
                            "max", "min", "abs"):
                return AbstractInt.bottom()  # uninterpretable, raises everywhere
            args = [ev(arg) for arg in node.args]
            failed = fail_through(*args)
            if failed is not None:
                return failed
            if not args:
                # Concrete evaluation raises IndexError/ValueError (not
                # EvalError) on an empty argument list — a crash, not a
                # rejection; never claim definite infeasibility.
                return AbstractInt.top(True)
            mf = may(*args)
            intervals = [arg.interval for arg in args]
            assert all(iv is not None for iv in intervals)
            ivs = [iv for iv in intervals if iv is not None]
            if name in ("$clog2", "clog2", "log2ceil"):
                return _with_may(_clog2(ivs[0]), mf)
            if name in ("maximum", "max"):
                return AbstractInt(_minmax(ivs, biggest=True), mf)
            if name in ("minimum", "min"):
                return AbstractInt(_minmax(ivs, biggest=False), mf)
            return AbstractInt(_abs(ivs[0]), mf)
        return AbstractInt.bottom()  # unknown node kind raises everywhere

    return ev(expr)


def _with_may(value: AbstractInt | Interval, extra_may_fail: bool) -> AbstractInt:
    if isinstance(value, Interval):
        return AbstractInt(value, extra_may_fail)
    if value.interval is None:
        return value
    return AbstractInt(value.interval, value.may_fail or extra_may_fail)
