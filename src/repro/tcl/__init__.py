"""Mini-TCL layer — how Dovado talks to the EDA tool.

Dovado "spawns Vivado as a subprocess and communicates with the physical
tool through the TCL interface", generating scripts from general frames
customized at run time.  This package reproduces that interface against
VEDA: a small TCL interpreter (:mod:`repro.tcl.interp`), a Vivado-flavored
command set bound to a :class:`~repro.flow.VivadoSim` session
(:mod:`repro.tcl.commands`), and the script frames the evaluation flow
renders per design point (:mod:`repro.tcl.frames`).
"""

from repro.tcl.interp import TclInterp
from repro.tcl.commands import bind_vivado_commands, VivadoTclSession
from repro.tcl.frames import render_evaluation_script, EVALUATION_FRAME

__all__ = [
    "TclInterp",
    "bind_vivado_commands",
    "VivadoTclSession",
    "render_evaluation_script",
    "EVALUATION_FRAME",
]
