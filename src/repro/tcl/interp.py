"""A small TCL interpreter.

Covers the language subset EDA control scripts actually use:

- one command per line, ``;`` separators, ``#`` comments, ``\\`` line
  continuation;
- word grouping with ``"..."`` (with substitution) and ``{...}`` (verbatim);
- variable substitution ``$name`` / ``${name}`` and command substitution
  ``[...]``;
- built-ins: ``set``, ``unset``, ``puts``, ``expr`` (integer arithmetic via
  the shared HDL expression parser is overkill — we evaluate with a tiny
  safe evaluator), ``list``, ``lindex``, ``string``, ``return``;
- user commands registered as Python callables ``fn(interp, argv) -> str``.

Unknown commands raise :class:`~repro.errors.TclError`, as Vivado does.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

from repro.errors import TclError

__all__ = ["TclInterp"]

CommandFn = Callable[["TclInterp", list[str]], str]

_EXPR_TOKEN = re.compile(r"\s*(\d+\.\d+|\d+|[A-Za-z_][\w]*|\*\*|==|!=|<=|>=|&&|\|\||<<|>>|.)")


def _safe_expr(text: str) -> str:
    """Evaluate a TCL ``expr`` string: numbers, + - * / % ** parens, compares.

    Implemented with a tiny shunting-yard over a whitelisted token set; no
    Python ``eval``.
    """
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _EXPR_TOKEN.match(text, pos)
        if not m:
            raise TclError(f"expr: bad token at {text[pos:]!r}")
        tok = m.group(1)
        pos = m.end()
        if tok.strip():
            tokens.append(tok)
    prec = {
        "||": 1, "&&": 2, "==": 3, "!=": 3, "<": 4, ">": 4, "<=": 4, ">=": 4,
        "<<": 5, ">>": 5, "+": 6, "-": 6, "*": 7, "/": 7, "%": 7, "**": 8,
    }
    out: list[float] = []
    ops: list[str] = []

    def apply(op: str) -> None:
        if len(out) < 2:
            raise TclError(f"expr: missing operand for {op!r}")
        b, a = out.pop(), out.pop()
        table = {
            "+": lambda: a + b,
            "-": lambda: a - b,
            "*": lambda: a * b,
            "/": lambda: a / b if (a % b if isinstance(a, int) else True) else a // b,
            "%": lambda: a % b,
            "**": lambda: a**b,
            "==": lambda: int(a == b),
            "!=": lambda: int(a != b),
            "<": lambda: int(a < b),
            ">": lambda: int(a > b),
            "<=": lambda: int(a <= b),
            ">=": lambda: int(a >= b),
            "<<": lambda: int(a) << int(b),
            ">>": lambda: int(a) >> int(b),
            "&&": lambda: int(bool(a) and bool(b)),
            "||": lambda: int(bool(a) or bool(b)),
        }
        if op not in table:
            raise TclError(f"expr: unsupported operator {op!r}")
        if op == "/":
            result = a / b
            if isinstance(a, int) and isinstance(b, int) and a % b == 0:
                result = a // b
            out.append(result)
        else:
            out.append(table[op]())

    prev_operand = False
    for tok in tokens:
        if re.fullmatch(r"\d+", tok):
            out.append(int(tok))
            prev_operand = True
        elif re.fullmatch(r"\d+\.\d+", tok):
            out.append(float(tok))
            prev_operand = True
        elif tok == "(":
            ops.append(tok)
            prev_operand = False
        elif tok == ")":
            while ops and ops[-1] != "(":
                apply(ops.pop())
            if not ops:
                raise TclError("expr: unbalanced parens")
            ops.pop()
            prev_operand = True
        elif tok in prec:
            if tok == "-" and not prev_operand:
                out.append(0)  # unary minus as (0 - x)
            while (
                ops and ops[-1] != "(" and prec.get(ops[-1], 0) >= prec[tok]
                and tok != "**"
            ):
                apply(ops.pop())
            ops.append(tok)
            prev_operand = False
        else:
            raise TclError(f"expr: unsupported token {tok!r}")
    while ops:
        op = ops.pop()
        if op == "(":
            raise TclError("expr: unbalanced parens")
        apply(op)
    if len(out) != 1:
        raise TclError("expr: malformed expression")
    value = out[0]
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return str(value)


class TclInterp:
    """The interpreter: variables, registered commands, a virtual FS."""

    def __init__(self) -> None:
        self.vars: dict[str, str] = {}
        self.commands: dict[str, CommandFn] = {}
        self.files: dict[str, str] = {}   # virtual filesystem for report output
        self.stdout: list[str] = []
        self._register_builtins()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------

    def register(self, name: str, fn: CommandFn) -> None:
        self.commands[name] = fn

    def _register_builtins(self) -> None:
        self.register("set", self._cmd_set)
        self.register("unset", self._cmd_unset)
        self.register("puts", self._cmd_puts)
        self.register("expr", self._cmd_expr)
        self.register("list", lambda i, a: " ".join(a))
        self.register("lindex", self._cmd_lindex)
        self.register("string", self._cmd_string)
        self.register("return", lambda i, a: a[0] if a else "")

    # ------------------------------------------------------------------
    # builtins
    # ------------------------------------------------------------------

    def _cmd_set(self, _: "TclInterp", argv: list[str]) -> str:
        if len(argv) == 1:
            name = argv[0]
            if name not in self.vars:
                raise TclError(f'can\'t read "{name}": no such variable')
            return self.vars[name]
        if len(argv) != 2:
            raise TclError('wrong # args: should be "set varName ?newValue?"')
        self.vars[argv[0]] = argv[1]
        return argv[1]

    def _cmd_unset(self, _: "TclInterp", argv: list[str]) -> str:
        for name in argv:
            self.vars.pop(name, None)
        return ""

    def _cmd_puts(self, _: "TclInterp", argv: list[str]) -> str:
        text = argv[-1] if argv else ""
        self.stdout.append(text)
        return ""

    def _cmd_expr(self, _: "TclInterp", argv: list[str]) -> str:
        return _safe_expr(" ".join(argv))

    def _cmd_lindex(self, _: "TclInterp", argv: list[str]) -> str:
        if len(argv) != 2:
            raise TclError('wrong # args: should be "lindex list index"')
        items = argv[0].split()
        idx = int(argv[1])
        try:
            return items[idx]
        except IndexError:
            return ""

    def _cmd_string(self, _: "TclInterp", argv: list[str]) -> str:
        if len(argv) >= 2 and argv[0] == "length":
            return str(len(argv[1]))
        if len(argv) >= 2 and argv[0] == "tolower":
            return argv[1].lower()
        if len(argv) >= 2 and argv[0] == "toupper":
            return argv[1].upper()
        raise TclError(f"string: unsupported subcommand {argv[:1]}")

    # ------------------------------------------------------------------
    # parsing / evaluation
    # ------------------------------------------------------------------

    def eval(self, script: str) -> str:
        """Evaluate a script; returns the last command's result."""
        result = ""
        for line_no, command in self._split_commands(script):
            words = self._parse_words(command, line_no)
            if not words:
                continue
            result = self._invoke(words, line_no)
        return result

    def _invoke(self, words: list[str], line_no: int) -> str:
        name, argv = words[0], words[1:]
        fn = self.commands.get(name)
        if fn is None:
            raise TclError(f"invalid command name \"{name}\"", line_no)
        return fn(self, argv)

    def _split_commands(self, script: str) -> Iterable[tuple[int, str]]:
        # Join continuation lines, strip comments, split on newlines/semicolons
        # not inside braces/brackets/quotes.
        lines = script.split("\n")
        logical: list[tuple[int, str]] = []
        buffer = ""
        start = 1
        for i, line in enumerate(lines, start=1):
            if not buffer:
                start = i
            if line.rstrip().endswith("\\"):
                buffer += line.rstrip()[:-1] + " "
                continue
            buffer += line
            logical.append((start, buffer))
            buffer = ""
        if buffer:
            logical.append((start, buffer))

        for line_no, text in logical:
            stripped = text.strip()
            if not stripped or stripped.startswith("#"):
                continue
            depth_brace = depth_bracket = 0
            in_quote = False
            cmd = ""
            for ch in text:
                if ch == '"' and depth_brace == 0:
                    in_quote = not in_quote
                elif ch == "{" and not in_quote:
                    depth_brace += 1
                elif ch == "}" and not in_quote:
                    depth_brace -= 1
                elif ch == "[" and not in_quote and depth_brace == 0:
                    depth_bracket += 1
                elif ch == "]" and not in_quote and depth_brace == 0:
                    depth_bracket -= 1
                if ch == ";" and not in_quote and depth_brace == 0 and depth_bracket == 0:
                    if cmd.strip():
                        yield line_no, cmd
                    cmd = ""
                else:
                    cmd += ch
            if cmd.strip() and not cmd.strip().startswith("#"):
                yield line_no, cmd

    def _parse_words(self, command: str, line_no: int) -> list[str]:
        words: list[str] = []
        i = 0
        n = len(command)
        while i < n:
            while i < n and command[i] in " \t":
                i += 1
            if i >= n:
                break
            ch = command[i]
            if ch == "{":
                depth = 1
                j = i + 1
                while j < n and depth:
                    if command[j] == "{":
                        depth += 1
                    elif command[j] == "}":
                        depth -= 1
                    j += 1
                if depth:
                    raise TclError("unbalanced braces", line_no)
                words.append(command[i + 1 : j - 1])
                i = j
            elif ch == '"':
                j = i + 1
                chunk = ""
                while j < n and command[j] != '"':
                    chunk += command[j]
                    j += 1
                if j >= n:
                    raise TclError("unbalanced quotes", line_no)
                words.append(self._substitute(chunk, line_no))
                i = j + 1
            else:
                j = i
                depth_bracket = 0
                while j < n and (command[j] not in " \t" or depth_bracket):
                    if command[j] == "[":
                        depth_bracket += 1
                    elif command[j] == "]":
                        depth_bracket -= 1
                    j += 1
                words.append(self._substitute(command[i:j], line_no))
                i = j
        return words

    _VAR_RE = re.compile(r"\$(\{[^}]+\}|[A-Za-z_][\w]*)")

    def _substitute(self, text: str, line_no: int) -> str:
        # Command substitution first (innermost-out via loop).
        while "[" in text:
            start = text.index("[")
            depth = 0
            end = -1
            for k in range(start, len(text)):
                if text[k] == "[":
                    depth += 1
                elif text[k] == "]":
                    depth -= 1
                    if depth == 0:
                        end = k
                        break
            if end < 0:
                raise TclError("unbalanced brackets", line_no)
            inner = text[start + 1 : end]
            value = self.eval(inner)
            text = text[:start] + value + text[end + 1 :]

        def repl(m: re.Match[str]) -> str:
            name = m.group(1)
            if name.startswith("{"):
                name = name[1:-1]
            if name not in self.vars:
                raise TclError(f'can\'t read "{name}": no such variable', line_no)
            return self.vars[name]

        return self._VAR_RE.sub(repl, text)
