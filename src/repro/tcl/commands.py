"""Vivado-flavored TCL command set bound to a VEDA session.

:class:`VivadoTclSession` is the state machine behind the commands: sources
are read, a part and clock are configured, ``synth_design`` records the run
request, ``place_design``/``route_design`` upgrade the step to
implementation, and the ``report_*`` commands *trigger* the evaluation
(lazily, once) and write report text into the interpreter's virtual
filesystem — the same observable protocol Dovado uses against real Vivado
(generate script → run tool → scrape report files).

Supported commands::

    create_project <name>                 (bookkeeping only)
    set_part <part>
    read_vhdl <file-or-key> | read_verilog [-sv] <file-or-key>
    create_clock -period <ns> [-name <n>] [<target>]
    synth_design -top <module> [-part <part>] [-directive <d>]
                 [-generic NAME=VALUE]...
    place_design [-directive <d>]
    route_design [-directive <d>]
    report_utilization -file <path>
    report_timing -file <path>
    write_checkpoint [-force] <path>
    exit

``read_vhdl``/``read_verilog`` accept either a real filesystem path or a
key previously registered via :meth:`VivadoTclSession.stage_source` — the
evaluation flow stages generated sources (module + box) in memory instead
of touching disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.directives import DirectiveSet, ImplDirective, SynthDirective
from repro.errors import TclError
from repro.flow.vivado_sim import Fidelity, FlowStep, RunResult, VivadoSim
from repro.hdl.ast import HdlLanguage
from repro.tcl.interp import TclInterp

__all__ = ["VivadoTclSession", "bind_vivado_commands"]


@dataclass
class VivadoTclSession:
    """Run state accumulated by the TCL commands."""

    sim: VivadoSim
    staged: dict[str, tuple[str, HdlLanguage]] = field(default_factory=dict)
    project: str = ""
    top: str = ""
    generics: dict[str, int] = field(default_factory=dict)
    synth_directive: SynthDirective = SynthDirective.DEFAULT
    impl_directive: ImplDirective = ImplDirective.DEFAULT
    step: FlowStep = FlowStep.SYNTHESIS
    placed: bool = False
    routed: bool = False
    #: Explicit fidelity request for rungs the script alone cannot convey
    #: (static-estimate renders no tool command at all, so the script is
    #: indistinguishable from a synthesis-only run).
    requested_fidelity: Fidelity | None = None
    result: RunResult | None = None
    exited: bool = False

    def stage_source(self, key: str, text: str, language: HdlLanguage | str) -> None:
        """Register in-memory HDL under ``key`` for read_vhdl/read_verilog."""
        self.staged[key] = (text, HdlLanguage(language))

    def _read(self, ref: str, language: HdlLanguage) -> list[str]:
        if ref in self.staged:
            text, staged_lang = self.staged[ref]
            return self.sim.read_hdl(text, staged_lang)
        path = Path(ref)
        if not path.exists():
            raise TclError(f"cannot read HDL source {ref!r}: no such file or staged key")
        return self.sim.read_file(str(path))

    def ensure_result(self) -> RunResult:
        if not self.top:
            raise TclError("no synth_design has been issued")
        if self.result is None:
            # A script that places but never routes stops at the
            # placed-estimate rung of the fidelity ladder; routing (alone
            # or after placement) means the full flow.  A static-estimate
            # request overrides the inference: its script has no tool
            # command, so only the explicit field distinguishes it from a
            # synthesis-only evaluation.
            fidelity: Fidelity | None = None
            step = self.step
            if self.requested_fidelity is Fidelity.STATIC_ESTIMATE:
                fidelity = Fidelity.STATIC_ESTIMATE
                step = FlowStep.IMPLEMENTATION
            elif self.step == FlowStep.IMPLEMENTATION and not self.routed:
                fidelity = Fidelity.PLACED_ESTIMATE
            self.result = self.sim.run(
                self.top,
                self.generics,
                step=step,
                directives=DirectiveSet(
                    synth=self.synth_directive, impl=self.impl_directive
                ),
                fidelity=fidelity,
            )
        return self.result


def _opt(argv: list[str], flag: str) -> str | None:
    """Extract the value following ``flag`` from argv (None if absent)."""
    if flag in argv:
        idx = argv.index(flag)
        if idx + 1 >= len(argv):
            raise TclError(f"option {flag} requires a value")
        return argv[idx + 1]
    return None


def _positional(argv: list[str], flags_with_value: set[str]) -> list[str]:
    """argv minus options; ``flags_with_value`` consume the next word too."""
    out: list[str] = []
    skip = False
    for i, word in enumerate(argv):
        if skip:
            skip = False
            continue
        if word.startswith("-"):
            if word in flags_with_value:
                skip = True
            continue
        out.append(word)
    return out


def bind_vivado_commands(interp: TclInterp, session: VivadoTclSession) -> None:
    """Register the Vivado-like commands on ``interp``."""

    def create_project(_: TclInterp, argv: list[str]) -> str:
        session.project = argv[0] if argv else "project_1"
        return session.project

    def set_part(_: TclInterp, argv: list[str]) -> str:
        if not argv:
            raise TclError('wrong # args: should be "set_part part"')
        return session.sim.set_part(argv[0]).part

    def read_vhdl(_: TclInterp, argv: list[str]) -> str:
        refs = _positional(argv, {"-library"})
        if not refs:
            raise TclError("read_vhdl: no source given")
        names: list[str] = []
        for ref in refs:
            names.extend(session._read(ref, HdlLanguage.VHDL))
        return " ".join(names)

    def read_verilog(_: TclInterp, argv: list[str]) -> str:
        language = (
            HdlLanguage.SYSTEMVERILOG if "-sv" in argv else HdlLanguage.VERILOG
        )
        refs = _positional(argv, set())
        if not refs:
            raise TclError("read_verilog: no source given")
        names: list[str] = []
        for ref in refs:
            names.extend(session._read(ref, language))
        return " ".join(names)

    def create_clock(_: TclInterp, argv: list[str]) -> str:
        period = _opt(argv, "-period")
        if period is None:
            raise TclError("create_clock: -period is required")
        session.sim.create_clock(float(period))
        return _opt(argv, "-name") or "clk"

    def synth_design(_: TclInterp, argv: list[str]) -> str:
        top = _opt(argv, "-top")
        if top is None:
            raise TclError("synth_design: -top is required")
        session.top = top
        part = _opt(argv, "-part")
        if part:
            session.sim.set_part(part)
        directive = _opt(argv, "-directive")
        if directive:
            try:
                session.synth_directive = SynthDirective(directive)
            except ValueError as exc:
                raise TclError(f"unknown synthesis directive {directive!r}") from exc
        # -generic NAME=VALUE may repeat.
        i = 0
        while i < len(argv):
            if argv[i] == "-generic":
                if i + 1 >= len(argv) or "=" not in argv[i + 1]:
                    raise TclError("-generic expects NAME=VALUE")
                name, _, value = argv[i + 1].partition("=")
                try:
                    session.generics[name] = int(value, 0)
                except ValueError as exc:
                    raise TclError(
                        f"-generic {name}: non-integer value {value!r}"
                    ) from exc
                i += 2
            else:
                i += 1
        session.step = FlowStep.SYNTHESIS
        session.placed = False
        session.routed = False
        session.result = None
        return top

    def place_design(_: TclInterp, argv: list[str]) -> str:
        _set_impl_directive(argv)
        session.step = FlowStep.IMPLEMENTATION
        session.placed = True
        session.result = None
        return ""

    def route_design(_: TclInterp, argv: list[str]) -> str:
        _set_impl_directive(argv)
        session.step = FlowStep.IMPLEMENTATION
        session.placed = True
        session.routed = True
        session.result = None
        return ""

    def _set_impl_directive(argv: list[str]) -> None:
        directive = _opt(argv, "-directive")
        if directive:
            try:
                session.impl_directive = ImplDirective(directive)
            except ValueError as exc:
                raise TclError(f"unknown implementation directive {directive!r}") from exc

    def report_utilization(interp: TclInterp, argv: list[str]) -> str:
        result = session.ensure_result()
        path = _opt(argv, "-file")
        if path:
            interp.files[path] = result.utilization_report_text
            return ""
        return result.utilization_report_text

    def report_timing(interp: TclInterp, argv: list[str]) -> str:
        result = session.ensure_result()
        path = _opt(argv, "-file")
        if path:
            interp.files[path] = result.timing_report_text
            return ""
        return result.timing_report_text

    def report_power(interp: TclInterp, argv: list[str]) -> str:
        from repro.flow.power import estimate_power, render_power_report

        result = session.ensure_result()
        toggle = _opt(argv, "-toggle_rate")
        power = estimate_power(
            result.utilization.used,
            session.sim.device,
            frequency_mhz=result.fmax_mhz,
            toggle_rate=float(toggle) if toggle else 0.125,
        )
        text = render_power_report(power, design=session.top, part=result.part)
        path = _opt(argv, "-file")
        if path:
            interp.files[path] = text
            return ""
        return text

    def write_checkpoint(interp: TclInterp, argv: list[str]) -> str:
        """Serialize the session's placement-checkpoint archive.

        Real ``.dcp`` files carry the placed netlist; VEDA's carry the
        placement archive JSON, which ``open_checkpoint`` restores — the
        content the incremental flow actually consumes.
        """
        import io
        import json

        refs = _positional(argv, set())
        path = refs[0] if refs else "checkpoint.dcp"
        session.ensure_result()
        store = session.sim.checkpoints
        payload = {
            "design": session.top,
            "step": str(session.step),
            "checkpoints": [
                {
                    "structure_fingerprint": c.structure_fingerprint,
                    "content_fingerprint": c.content_fingerprint,
                    "coords": {k: list(v) for k, v in c.coords.items()},
                    "block_summary": c.block_summary,
                }
                for c in store._store.values()
            ],
        }
        interp.files[path] = json.dumps(payload, indent=2)
        return path

    def open_checkpoint(interp: TclInterp, argv: list[str]) -> str:
        """Restore a checkpoint archive written by ``write_checkpoint``."""
        import json

        from repro.pnr.checkpoints import Checkpoint, CheckpointStore

        refs = _positional(argv, set())
        if not refs:
            raise TclError("open_checkpoint: a path is required")
        path = refs[0]
        text = interp.files.get(path)
        if text is None:
            candidate = Path(path)
            if not candidate.exists():
                raise TclError(f"open_checkpoint: no such checkpoint {path!r}")
            text = candidate.read_text(encoding="utf-8")
        try:
            payload = json.loads(text)
            store = CheckpointStore()
            for entry in payload["checkpoints"]:
                store.save(
                    Checkpoint(
                        structure_fingerprint=int(entry["structure_fingerprint"]),
                        content_fingerprint=int(entry["content_fingerprint"]),
                        coords={
                            k: (float(v[0]), float(v[1]))
                            for k, v in entry["coords"].items()
                        },
                        block_summary={
                            k: int(v) for k, v in entry["block_summary"].items()
                        },
                    )
                )
        except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
            raise TclError(f"open_checkpoint: malformed checkpoint: {exc}") from exc
        session.sim.checkpoints = store
        session.sim.incremental_impl = True
        return payload.get("design", "")

    def cmd_exit(_: TclInterp, argv: list[str]) -> str:
        session.exited = True
        return ""

    interp.register("create_project", create_project)
    interp.register("set_part", set_part)
    interp.register("read_vhdl", read_vhdl)
    interp.register("read_verilog", read_verilog)
    interp.register("create_clock", create_clock)
    interp.register("synth_design", synth_design)
    interp.register("place_design", place_design)
    interp.register("route_design", route_design)
    interp.register("report_utilization", report_utilization)
    interp.register("report_timing", report_timing)
    interp.register("report_power", report_power)
    interp.register("write_checkpoint", write_checkpoint)
    interp.register("open_checkpoint", open_checkpoint)
    interp.register("read_checkpoint", open_checkpoint)
    interp.register("exit", cmd_exit)
