"""TCL script frames.

Dovado ships "general frames for TCL scripts that [it] customizes at
run-time for module specifications and user-selected directives".  The
evaluation frame below is the full single-point script: read sources, apply
the part and clock constraint, synthesize (optionally continue to
implementation), and emit the two report files Dovado scrapes.

Placeholders are TCL variables assigned in the rendered prologue, so the
emitted script is valid standalone TCL.
"""

from __future__ import annotations

from repro.directives import DirectiveSet
from repro.flow.vivado_sim import Fidelity, FlowStep
from repro.hdl.ast import HdlLanguage

__all__ = ["EVALUATION_FRAME", "render_evaluation_script"]

EVALUATION_FRAME = """\
# Dovado evaluation frame (rendered at run time)
create_project $project_name
set_part $part
$read_commands
create_clock -period $target_period_ns -name dovado_clk
synth_design -top $top_module -directive $synth_directive
$impl_commands
report_utilization -file $util_report
report_timing -file $timing_report
write_checkpoint -force $checkpoint_file
exit
"""

_READ_CMD = {
    HdlLanguage.VHDL: "read_vhdl",
    HdlLanguage.VERILOG: "read_verilog",
    HdlLanguage.SYSTEMVERILOG: "read_verilog -sv",
}


def render_evaluation_script(
    sources: list[tuple[str, HdlLanguage]],
    top: str,
    part: str,
    target_period_ns: float,
    step: FlowStep = FlowStep.IMPLEMENTATION,
    directives: DirectiveSet | None = None,
    util_report: str = "utilization.rpt",
    timing_report: str = "timing.rpt",
    checkpoint_file: str = "dovado.dcp",
    project_name: str = "dovado_run",
    fidelity: Fidelity | None = None,
) -> str:
    """Customize the evaluation frame for one run.

    ``sources`` is a list of (staged-key-or-path, language) in compile
    order (SV packages first, per the paper's rule — the caller/
    SourceCollection is responsible for that ordering).

    ``fidelity`` trims the implementation tail for lower-rung probes:
    ``PLACED_ESTIMATE`` emits ``place_design`` without ``route_design``
    (the session reads post-place estimated timing),
    ``SYNTH_ESTIMATE`` emits neither, and ``STATIC_ESTIMATE`` emits an
    explanatory comment only (the session computes analytical bounds
    without any tool stage).  ``None``/``FULL_ROUTE`` renders the script
    byte-identically to the pre-ladder frame.
    """
    directives = directives or DirectiveSet()
    read_cmds = "\n".join(f"{_READ_CMD[lang]} {ref}" for ref, lang in sources)
    if step == FlowStep.IMPLEMENTATION and fidelity in (None, Fidelity.FULL_ROUTE):
        impl_cmds = (
            f"place_design -directive {directives.impl}\n"
            f"route_design -directive {directives.impl}"
        )
    elif step == FlowStep.IMPLEMENTATION and fidelity is Fidelity.PLACED_ESTIMATE:
        impl_cmds = f"place_design -directive {directives.impl}"
    elif step == FlowStep.IMPLEMENTATION and fidelity is Fidelity.STATIC_ESTIMATE:
        impl_cmds = "# static-estimate evaluation (analytical bounds, no tool stage)"
    else:
        impl_cmds = "# synthesis-only evaluation"

    prologue = "\n".join(
        [
            f"set project_name {project_name}",
            f"set part {part}",
            f"set top_module {top}",
            f"set target_period_ns {target_period_ns}",
            f"set synth_directive {directives.synth}",
            f"set util_report {util_report}",
            f"set timing_report {timing_report}",
            f"set checkpoint_file {checkpoint_file}",
        ]
    )
    body = EVALUATION_FRAME.replace("$read_commands", read_cmds).replace(
        "$impl_commands", impl_cmds
    )
    return prologue + "\n" + body
