"""Exception hierarchy for the Dovado reproduction.

Every error raised by the framework derives from :class:`ReproError`, so
callers can catch a single base class at the CLI / session boundary.  The
hierarchy mirrors the major subsystems: HDL frontend, boxing, the simulated
EDA flow (VEDA), estimation, and multi-objective optimization.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


# ---------------------------------------------------------------------------
# HDL frontend
# ---------------------------------------------------------------------------


class HdlError(ReproError):
    """Base class for HDL frontend errors."""


class LexError(HdlError):
    """Raised when the lexer encounters an unrecognized character sequence.

    Attributes
    ----------
    line, column:
        1-based position of the offending character in the source text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(HdlError):
    """Raised when a parser cannot derive a declaration from the token stream."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ValidationError(HdlError):
    """Raised by the lint/"formal verification" pass on malformed interfaces."""


class DrcViolationError(ValidationError):
    """Raised by the DSE pre-flight gate when a concrete design point fails
    the elaboration-aware design rule checks.

    Carries the error-severity findings so callers can report (or record)
    the individual rule codes.
    """

    def __init__(self, message: str, findings: tuple = ()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class UnknownLanguageError(HdlError):
    """Raised when the frontend cannot determine a file's HDL dialect."""


class ModuleNotFoundInSource(HdlError):
    """Raised when a requested top module is absent from the parsed sources."""


# ---------------------------------------------------------------------------
# Boxing
# ---------------------------------------------------------------------------


class BoxingError(ReproError):
    """Base class for sandboxing/boxing failures."""


class NoClockPortError(BoxingError):
    """Raised when no clock port can be identified for timing constraints."""


class ParameterOverrideError(BoxingError):
    """Raised when a parameter override targets an unknown or unsupported generic."""


# ---------------------------------------------------------------------------
# Simulated EDA flow (VEDA)
# ---------------------------------------------------------------------------


class FlowError(ReproError):
    """Base class for synthesis/implementation flow errors."""


class ElaborationError(FlowError):
    """Raised when a design cannot be elaborated into a netlist."""


class MappingError(FlowError):
    """Raised by technology mapping (e.g. primitive not supported by device)."""


class PlacementError(FlowError):
    """Raised when placement cannot fit the design on the target device."""


class UtilizationOverflowError(PlacementError):
    """Raised when a design requires more resources than the device provides."""

    def __init__(self, resource: str, required: int, available: int) -> None:
        super().__init__(
            f"design needs {required} {resource} but device provides {available}"
        )
        self.resource = resource
        self.required = required
        self.available = available


class TimingAnalysisError(FlowError):
    """Raised when static timing analysis fails (e.g. no clocked paths)."""


class CheckpointError(FlowError):
    """Raised on corrupted or incompatible incremental-flow checkpoints."""


class TclError(FlowError):
    """Raised by the mini-TCL interpreter on script errors."""

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"{message} (tcl line {line})" if line else message)
        self.line = line


class UnknownDeviceError(FlowError):
    """Raised when a part/board name is not in the device catalog."""


# ---------------------------------------------------------------------------
# Estimation
# ---------------------------------------------------------------------------


class EstimationError(ReproError):
    """Base class for approximation-model errors."""


class EmptyDatasetError(EstimationError):
    """Raised when a prediction is requested from an empty dataset."""


class BandwidthSelectionError(EstimationError):
    """Raised when LOO cross-validation cannot select a usable bandwidth."""


# ---------------------------------------------------------------------------
# Multi-objective optimization
# ---------------------------------------------------------------------------


class OptimizationError(ReproError):
    """Base class for NSGA-II / search errors."""


class InvalidSpaceError(OptimizationError):
    """Raised when a parameter space is empty, inverted, or inconsistent."""


class TerminationError(OptimizationError):
    """Raised when termination criteria are misconfigured."""
