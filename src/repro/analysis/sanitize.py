"""The runtime lock-order sanitizer: S003's dynamic counterpart.

:class:`LockOrderSanitizer` monkeypatches ``threading.Lock`` /
``threading.RLock``, ``fcntl.flock``, and ``time.sleep`` to record, while
tests run, the *actual* lock acquisition DAG — every ``A held while B
acquired`` edge, keyed by each lock's **creation site** ``(file, line)``
(flocks by the call site of the acquiring frame).  That identity is what
lets the recording be cross-checked against the static S003 graph from
:func:`repro.analysis.concurrency.static_lock_graph`, whose
:class:`~repro.analysis.concurrency.LockNode` entries carry the same
definition lines: the static graph predicts which orderings are possible,
the sanitizer observes which ones actually happen, and each validates the
other — a runtime edge missing from the static graph means the analyzer's
model is stale; a static edge never observed is untested ordering.

Scope-filtered: only locks *created* by code under ``scope_root`` (and
flocks taken from it) are instrumented, so stdlib / thread-pool internals
stay untouched.  ``time.sleep`` while holding an instrumented lock is
recorded as a held-lock blocking event (and optionally raises).

Usage — pytest fixture style::

    from repro.analysis.sanitize import lock_sanitizer

    @pytest.fixture(autouse=True)
    def _sanitize():
        with lock_sanitizer() as san:
            yield san
        assert san.cycles() == []

The patching is process-global; installs are serialized by a module
mutex and may not be nested.
"""

from __future__ import annotations

import linecache
import sys
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

try:  # pragma: no branch
    import fcntl

    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FLOCK = False

from repro.analysis.concurrency import LockGraph

__all__ = [
    "HeldLockBlockingCall",
    "LockOrderSanitizer",
    "SanitizerError",
    "lock_sanitizer",
    "runtime_static_mismatches",
]

#: A lock's runtime identity: (absolute file, line) of its creation site
#: (for flocks: of the acquiring call site).
SiteKey = tuple[str, int]

_INSTALL_MUTEX = threading.Lock()


class SanitizerError(AssertionError):
    """A held-lock blocking call surfaced with ``fail_on_blocking``."""


class HeldLockBlockingCall:
    """One ``time.sleep`` observed while instrumented locks were held."""

    def __init__(self, held: tuple[SiteKey, ...], site: SiteKey) -> None:
        self.held = held
        self.site = site

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeldLockBlockingCall(held={self.held!r}, site={self.site!r})"


class _TracedLock:
    """A real lock wrapped to report acquire/release to the sanitizer."""

    def __init__(self, real: Any, key: SiteKey, owner: "LockOrderSanitizer") -> None:
        self._real = real
        self._key = key
        self._owner = owner

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._real.acquire(blocking, timeout)
        if got:
            self._owner._on_acquire(self._key)
        return got

    def release(self) -> None:
        self._real.release()
        self._owner._on_release(self._key)

    def locked(self) -> bool:
        return bool(self._real.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def _at_fork_reinit(self) -> None:  # pragma: no cover - fork support
        self._real._at_fork_reinit()


class LockOrderSanitizer:
    """Record the acquisition DAG of every in-scope lock while installed."""

    def __init__(
        self,
        scope_root: str | Path | None = None,
        fail_on_blocking: bool = False,
    ) -> None:
        if scope_root is None:
            import repro

            scope_root = Path(repro.__file__).resolve().parent
        self.scope_root = str(Path(scope_root).resolve())
        self.fail_on_blocking = fail_on_blocking
        #: every instrumented lock creation / flock site
        self.nodes: dict[SiteKey, str] = {}
        #: (held, acquired) -> observation count
        self.edges: dict[tuple[SiteKey, SiteKey], int] = {}
        self.blocking_calls: list[HeldLockBlockingCall] = []
        self._tls = threading.local()
        self._mutex = threading.Lock()  # created pre-install: never traced
        self._installed = False
        self._orig_lock: Any = None
        self._orig_rlock: Any = None
        self._orig_flock: Any = None
        self._orig_sleep: Any = None

    # -- bookkeeping (called from traced primitives) ----------------------

    def _held(self) -> list[SiteKey]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def _on_acquire(self, key: SiteKey) -> None:
        held = self._held()
        with self._mutex:
            for h in held:
                if h != key:
                    edge = (h, key)
                    self.edges[edge] = self.edges.get(edge, 0) + 1
        held.append(key)

    def _on_release(self, key: SiteKey) -> None:
        held = self._held()
        # Remove the innermost matching hold (locks may be taken out of
        # strict stack order; RLocks may appear more than once).
        for i in range(len(held) - 1, -1, -1):
            if held[i] == key:
                del held[i]
                break

    def _caller_site(self) -> SiteKey | None:
        """The nearest in-scope frame above the patched primitive."""
        frame = sys._getframe(2)
        while frame is not None:
            filename = frame.f_code.co_filename
            if filename.startswith(self.scope_root):
                return (filename, frame.f_lineno)
            frame = frame.f_back
        return None

    # -- patched primitives ------------------------------------------------

    def _make_lock_factory(self, orig: Any, kind: str) -> Any:
        def factory(*args: Any, **kwargs: Any) -> Any:
            real = orig(*args, **kwargs)
            frame = sys._getframe(1)
            filename = frame.f_code.co_filename
            if not filename.startswith(self.scope_root):
                return real
            # A C-extension caller (numpy's BitGenerator, for one) has no
            # Python frame, so the creation would be mis-attributed to the
            # nearest in-scope frame; require the attributed source line to
            # actually construct a lock before claiming it as ours.
            line_text = linecache.getline(filename, frame.f_lineno)
            if "Lock(" not in line_text:
                return real
            key = (filename, frame.f_lineno)
            with self._mutex:
                self.nodes.setdefault(key, kind)
            return _TracedLock(real, key, self)

        return factory

    def _flock_holds(self) -> dict[int, SiteKey]:
        holds = getattr(self._tls, "flock_holds", None)
        if holds is None:
            holds = {}
            self._tls.flock_holds = holds
        return holds

    def _traced_flock(self, fh: Any, operation: int) -> None:
        assert self._orig_flock is not None
        self._orig_flock(fh, operation)
        if not _HAVE_FLOCK:  # pragma: no cover - defensive
            return
        fd = fh if isinstance(fh, int) else fh.fileno()
        holds = self._flock_holds()
        if operation & fcntl.LOCK_UN:
            # The unlock call site differs from the lock's: release the
            # site this thread recorded for the descriptor.
            site = holds.pop(fd, None)
            if site is not None:
                self._on_release(site)
        elif operation & (fcntl.LOCK_EX | fcntl.LOCK_SH):
            site = self._caller_site()
            if site is None:
                return
            with self._mutex:
                self.nodes.setdefault(site, "flock")
            holds[fd] = site
            self._on_acquire(site)

    def _traced_sleep(self, seconds: float) -> None:
        held = tuple(self._held())
        if held:
            site = self._caller_site() or ("<unknown>", 0)
            event = HeldLockBlockingCall(held, site)
            with self._mutex:
                self.blocking_calls.append(event)
            if self.fail_on_blocking:
                raise SanitizerError(
                    f"time.sleep at {site[0]}:{site[1]} while holding "
                    f"{len(held)} instrumented lock(s): {held!r}"
                )
        assert self._orig_sleep is not None
        self._orig_sleep(seconds)

    # -- lifecycle ---------------------------------------------------------

    def install(self) -> None:
        if self._installed:
            raise RuntimeError("sanitizer already installed")
        if not _INSTALL_MUTEX.acquire(blocking=False):
            raise RuntimeError("another LockOrderSanitizer is installed")
        self._orig_lock = threading.Lock
        self._orig_rlock = threading.RLock
        self._orig_sleep = time.sleep
        threading.Lock = self._make_lock_factory(self._orig_lock, "Lock")  # type: ignore[misc]
        threading.RLock = self._make_lock_factory(self._orig_rlock, "RLock")  # type: ignore[misc]
        time.sleep = self._traced_sleep  # type: ignore[assignment]
        if _HAVE_FLOCK:
            self._orig_flock = fcntl.flock
            fcntl.flock = self._traced_flock  # type: ignore[assignment]
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = self._orig_lock  # type: ignore[misc]
        threading.RLock = self._orig_rlock  # type: ignore[misc]
        time.sleep = self._orig_sleep  # type: ignore[assignment]
        if _HAVE_FLOCK and self._orig_flock is not None:
            fcntl.flock = self._orig_flock  # type: ignore[assignment]
        self._installed = False
        _INSTALL_MUTEX.release()

    # -- results -----------------------------------------------------------

    def cycles(self) -> list[list[SiteKey]]:
        """Cycles in the observed acquisition graph (deadlock witnesses)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.edges)
        return [sorted(c) for c in nx.simple_cycles(graph)]

    def edges_relative(self, base: str | Path) -> dict[
        tuple[tuple[str, int], tuple[str, int]], int
    ]:
        """Observed edges with files rewritten relative to *base* (posix),
        matching the static graph's path convention."""
        base_path = Path(base).resolve()

        def rel(key: SiteKey) -> tuple[str, int]:
            try:
                return (
                    Path(key[0]).resolve().relative_to(base_path).as_posix(),
                    key[1],
                )
            except ValueError:
                return (key[0], key[1])

        return {(rel(a), rel(b)): n for (a, b), n in self.edges.items()}


def runtime_static_mismatches(
    sanitizer: LockOrderSanitizer,
    graph: LockGraph,
    src_base: str | Path,
) -> list[str]:
    """Observed orderings the static S003 graph does not predict.

    Maps every runtime edge's endpoints onto static lock symbols via their
    definition sites and checks the edge (direct or seeded) exists.  An
    empty list is the cross-validation passing: the runtime acquisition
    order is a subgraph of the static graph.
    """
    problems: list[str] = []
    for (a, b), count in sorted(sanitizer.edges_relative(src_base).items()):
        sym_a = graph.node_at(*a)
        sym_b = graph.node_at(*b)
        if sym_a is None:
            problems.append(f"lock at {a[0]}:{a[1]} unknown to the static graph")
            continue
        if sym_b is None:
            problems.append(f"lock at {b[0]}:{b[1]} unknown to the static graph")
            continue
        if sym_a == sym_b:
            continue  # e.g. two member locks from one creation site
        if not graph.has_edge(sym_a, sym_b):
            problems.append(
                f"observed order {sym_a} -> {sym_b} ({count}x) is missing "
                "from the static S003 graph"
            )
    return problems


@contextmanager
def lock_sanitizer(
    scope_root: str | Path | None = None,
    fail_on_blocking: bool = False,
) -> Iterator[LockOrderSanitizer]:
    """Install a :class:`LockOrderSanitizer` for the duration of a block."""
    sanitizer = LockOrderSanitizer(
        scope_root=scope_root, fail_on_blocking=fail_on_blocking
    )
    sanitizer.install()
    try:
        yield sanitizer
    finally:
        sanitizer.uninstall()
