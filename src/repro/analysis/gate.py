"""The DSE pre-flight gate: point-level DRC before any tool dispatch.

Simopt-style speculative pre-checks ahead of the CAD flow: before a design
point is priced as a (simulated) Vivado run, the gate elaborates its
parameter binding through the elaboration + boxing rule stages and rejects
points that cannot produce a meaningful run — zero/negative port widths,
out-of-space values, unboxable configurations.  A rejection costs nothing:
no tool session is touched, no simulated seconds accrue.

Verdicts are memoized on the frozen parameter binding (the same key the
cross-batch evaluation memo uses), so a point is checked once per gate
lifetime no matter how many generations re-propose it.  When every sampled
point is feasible the gate is behaviour-neutral: the checks are pure
functions of (module, binding) and consume no randomness.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np

from repro.analysis.checker import DesignRuleChecker
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleConfig, get_rule
from repro.errors import DrcViolationError
from repro.hdl.ast import Module
from repro.observe import current_telemetry

__all__ = ["PreflightGate", "freeze_params"]

# The static layer may short-circuit a rejection only when these rules run
# at their stock ERROR severity — its infeasibility proofs are phrased in
# terms of exactly these codes (D002 merely labels the synthesized findings).
_STATIC_BACKING_CODES = ("P001", "P002", "P005")

FrozenParams = tuple[tuple[str, int], ...]


def freeze_params(params: Mapping[str, int]) -> FrozenParams:
    """Canonical hashable key for a parameter binding."""
    return tuple(sorted((k.lower(), int(v)) for k, v in params.items()))


class PreflightGate:
    """Memoized point-level design rule checks for one module."""

    def __init__(
        self,
        module: Module,
        space: Any = None,
        boxed: bool = True,
        clock_port: Optional[str] = None,
        config: Optional[RuleConfig] = None,
        netlist_stage: bool = False,
    ) -> None:
        self.module = module
        self.space = space
        self.boxed = boxed
        self.clock_port = clock_port
        self.checker = DesignRuleChecker(config)
        # Opt-in netlist stage: points passing source-level DRC are also
        # elaborated and screened by the error-severity netlist rules
        # (N001 loops / N002 undriven / N003 multiply-driven) — still zero
        # simulated seconds, just milliseconds of elaboration.  Off by
        # default so stock gates reproduce pre-netlist behaviour exactly.
        self.netlist_stage = bool(netlist_stage)
        self._verdicts: dict[FrozenParams, tuple[Finding, ...]] = {}
        self.checks = 0
        self.rejections = 0
        self.static_rejections = 0
        self.netlist_rejections = 0
        self._static: Any = None  # lazy StaticSpaceAnalysis (or None)
        self._static_ready = False

    # ------------------------------------------------------------------
    # the static (interval-analysis) layer

    def _config_allows_static(self) -> bool:
        """The static layer's proofs assume the stock rule configuration.

        Its verdicts are phrased as "the checker would certainly emit a
        P001/P002/P005 error here"; a config that disables, demotes, or
        baselines those rules breaks that equivalence, so the gate falls
        back to per-point checking entirely.
        """
        cfg = self.checker.config
        if cfg.baseline:
            return False
        if not cfg.enabled("D002"):
            return False
        for code in _STATIC_BACKING_CODES:
            if not cfg.enabled(code):
                return False
            if cfg.severity_of(get_rule(code)) is not Severity.ERROR:
                return False
        return True

    def _static_analysis(self) -> Any:
        """The lazily-built interval analysis, or None when inapplicable.

        The analysis only *short-circuits definite rejections* — every
        undecided point still reaches the full checker, so verdicts (and
        therefore Pareto fronts) are identical with or without it.
        """
        if not self._static_ready:
            self._static_ready = True
            if self.space is not None and self._config_allows_static():
                from repro.analysis.dataflow_rules import StaticSpaceAnalysis

                analysis = StaticSpaceAnalysis(self.module, self.space)
                if analysis.applicable:
                    self._static = analysis
        return self._static

    def static_infeasible_mask(self, X: Any) -> np.ndarray:
        """Vectorized definite-infeasibility for encoded rows (True = the
        full checker would certainly reject the decoded binding)."""
        rows = np.atleast_2d(np.asarray(X, dtype=np.int64))
        static = self._static_analysis()
        if static is None:
            return np.zeros(rows.shape[0], dtype=bool)
        return static.static_infeasible_mask(rows)

    # ------------------------------------------------------------------

    def errors(self, params: Mapping[str, int]) -> tuple[Finding, ...]:
        """Error-severity findings for ``params`` (memoized; empty = feasible)."""
        key = freeze_params(params)
        if key not in self._verdicts:
            self.checks += 1
            findings: Optional[tuple[Finding, ...]] = None
            static = self._static_analysis()
            if static is not None:
                findings = static.reject_findings(params)
            tel = current_telemetry()
            if findings is not None:
                # Interval analysis proved the rejection — zero elaboration.
                self.static_rejections += 1
                if tel is not None:
                    tel.counters.inc("decision.static_reject")
            else:
                if tel is not None:
                    tel.counters.inc("decision.drc_elaboration")
                result = self.checker.check_point(
                    self.module,
                    params,
                    space=self.space,
                    boxed=self.boxed,
                    clock_port=self.clock_port,
                )
                findings = result.errors()
                if not findings and self.netlist_stage:
                    netlist_errors = self._netlist_errors(params)
                    if netlist_errors:
                        self.netlist_rejections += 1
                        if tel is not None:
                            tel.counters.inc("decision.netlist_reject")
                        findings = netlist_errors
            self._verdicts[key] = findings
            if self._verdicts[key]:
                self.rejections += 1
        return self._verdicts[key]

    def _netlist_errors(self, params: Mapping[str, int]) -> tuple[Finding, ...]:
        """Error-severity netlist findings (structurally broken point).

        Elaboration failures are *not* rejections here: a binding the
        source-level rules accepted but the elaborator still refuses will
        fail identically (and get charged) inside the tool run, and the
        gate must not silently absorb that diagnostic.
        """
        from repro.errors import ElaborationError

        try:
            result = self.checker.check_netlist(self.module, params)
        except ElaborationError:
            return ()
        return result.errors()

    def is_feasible(self, params: Mapping[str, int]) -> bool:
        return not self.errors(params)

    def violation(self, params: Mapping[str, int]) -> Optional[DrcViolationError]:
        """The error a rejected point raises, or None when feasible.

        Built here (not at the raise site) so the serial evaluator and the
        parallel fan-out produce byte-identical failure records.
        """
        errors = self.errors(params)
        if not errors:
            return None
        details = "; ".join(str(f) for f in errors)
        return DrcViolationError(
            f"module {self.module.name!r} failed DRC pre-flight at point "
            f"({', '.join(f'{k}={v}' for k, v in sorted(params.items()))}): "
            f"{details}",
            findings=errors,
        )

    def raise_for_point(self, params: Mapping[str, int]) -> None:
        """Raise :class:`DrcViolationError` when ``params`` is infeasible."""
        error = self.violation(params)
        if error is not None:
            raise error

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        out = {
            "drc_checks": self.checks,
            "drc_rejections": self.rejections,
            "drc_memo_size": len(self._verdicts),
        }
        if self._static is not None:
            out["drc_static_rejections"] = self.static_rejections
        if self.netlist_stage:
            out["drc_netlist_rejections"] = self.netlist_rejections
        return out
