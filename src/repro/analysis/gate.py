"""The DSE pre-flight gate: point-level DRC before any tool dispatch.

Simopt-style speculative pre-checks ahead of the CAD flow: before a design
point is priced as a (simulated) Vivado run, the gate elaborates its
parameter binding through the elaboration + boxing rule stages and rejects
points that cannot produce a meaningful run — zero/negative port widths,
out-of-space values, unboxable configurations.  A rejection costs nothing:
no tool session is touched, no simulated seconds accrue.

Verdicts are memoized on the frozen parameter binding (the same key the
cross-batch evaluation memo uses), so a point is checked once per gate
lifetime no matter how many generations re-propose it.  When every sampled
point is feasible the gate is behaviour-neutral: the checks are pure
functions of (module, binding) and consume no randomness.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.analysis.checker import DesignRuleChecker
from repro.analysis.findings import Finding
from repro.analysis.registry import RuleConfig
from repro.errors import DrcViolationError
from repro.hdl.ast import Module

__all__ = ["PreflightGate", "freeze_params"]

FrozenParams = tuple[tuple[str, int], ...]


def freeze_params(params: Mapping[str, int]) -> FrozenParams:
    """Canonical hashable key for a parameter binding."""
    return tuple(sorted((k.lower(), int(v)) for k, v in params.items()))


class PreflightGate:
    """Memoized point-level design rule checks for one module."""

    def __init__(
        self,
        module: Module,
        space: Any = None,
        boxed: bool = True,
        clock_port: Optional[str] = None,
        config: Optional[RuleConfig] = None,
    ) -> None:
        self.module = module
        self.space = space
        self.boxed = boxed
        self.clock_port = clock_port
        self.checker = DesignRuleChecker(config)
        self._verdicts: dict[FrozenParams, tuple[Finding, ...]] = {}
        self.checks = 0
        self.rejections = 0

    # ------------------------------------------------------------------

    def errors(self, params: Mapping[str, int]) -> tuple[Finding, ...]:
        """Error-severity findings for ``params`` (memoized; empty = feasible)."""
        key = freeze_params(params)
        if key not in self._verdicts:
            self.checks += 1
            result = self.checker.check_point(
                self.module,
                params,
                space=self.space,
                boxed=self.boxed,
                clock_port=self.clock_port,
            )
            self._verdicts[key] = result.errors()
            if self._verdicts[key]:
                self.rejections += 1
        return self._verdicts[key]

    def is_feasible(self, params: Mapping[str, int]) -> bool:
        return not self.errors(params)

    def violation(self, params: Mapping[str, int]) -> Optional[DrcViolationError]:
        """The error a rejected point raises, or None when feasible.

        Built here (not at the raise site) so the serial evaluator and the
        parallel fan-out produce byte-identical failure records.
        """
        errors = self.errors(params)
        if not errors:
            return None
        details = "; ".join(str(f) for f in errors)
        return DrcViolationError(
            f"module {self.module.name!r} failed DRC pre-flight at point "
            f"({', '.join(f'{k}={v}' for k, v in sorted(params.items()))}): "
            f"{details}",
            findings=errors,
        )

    def raise_for_point(self, params: Mapping[str, int]) -> None:
        """Raise :class:`DrcViolationError` when ``params`` is infeasible."""
        error = self.violation(params)
        if error is not None:
            raise error

    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "drc_checks": self.checks,
            "drc_rejections": self.rejections,
            "drc_memo_size": len(self._verdicts),
        }
