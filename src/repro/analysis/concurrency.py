"""S-series rules: concurrency & atomicity self-analysis of the service layer.

Unlike every other stage, the CONCURRENCY rules do not look at user HDL —
they run over the framework's *own* Python (``ctx.py_sources``) and encode
the invariants ``repro.serve`` and ``repro.cache`` depend on:

- **S001** — a blocking call (``time.sleep``, sync file I/O, ``subprocess``,
  ``flock``) reachable from an ``async def`` / event-loop-confined code
  without ``run_in_executor``; plus the poll-loop variant (``time.sleep``
  inside a ``while`` loop of a class that owns a ``threading.Event`` it
  should be ``wait()``-ing on).
- **S002** — a lock or flock acquired outside ``with`` / ``try-finally``:
  an exception between acquire and release leaks the lock forever.
- **S003** — lock-order cycles in the statically-built acquisition graph
  across ``threading.Lock`` / ``asyncio.Lock`` / flock sites, seeded with
  the known fleet-lock → member-lock → store-flock ordering
  (:data:`SEEDED_LOCK_ORDER`).
- **S004** — read-modify-write of an attribute shared between roles
  (scheduler-loop callbacks vs executor/job threads vs callers) with no
  dominating lock acquisition: a lost-update race.  Once every writer of
  such an attribute holds a lock, the read variant fires on lockless
  reads of it — they bypass the coherence protocol the writers
  established and can observe torn multi-field snapshots.
- **S005** — non-atomic publish in a multi-process class: rewriting a path
  other processes read without the tmp-file + ``os.replace`` idiom
  (``repro.serve.queue`` / ``repro.cache.store`` are the reference
  implementations), destructive unlinks with no republished state,
  unguarded ``json.loads`` of shared files, and rank-blind index
  revalidation.
- **S006** — fire-and-forget ``asyncio.create_task`` / ``ensure_future``
  whose result is never awaited or exception-handled.

The analysis is a deliberately conservative whole-program AST model
(:class:`_Program`): imports are resolved across the scanned source set
(including one re-export hop through package ``__init__`` modules), class
attributes are typed from ``threading.Lock()``-style construction sites,
annotations, and annotated constructor parameters, and call edges are
followed a few hops deep.  Lock identities are *symbolic*
(``path::Class.attr``) but carry their definition line, which is what lets
the runtime sanitizer (:mod:`repro.analysis.sanitize`) map the locks it
observes back onto this graph and cross-check the two.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.analysis.findings import Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule

__all__ = [
    "LockGraph",
    "LockNode",
    "SEEDED_LOCK_ORDER",
    "collect_py_sources",
    "static_lock_graph",
]


# --------------------------------------------------------------------------
# source collection
# --------------------------------------------------------------------------


def collect_py_sources(root: str | Path | None = None) -> list[tuple[str, str]]:
    """``(relative posix path, text)`` pairs for every ``.py`` under *root*.

    ``root`` defaults to the installed ``repro`` package directory; paths
    are relative to the package *parent*, so they read ``repro/serve/...``
    and module dotted names derive mechanically from them.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root).resolve()
    base = root.parent
    out: list[tuple[str, str]] = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        out.append(
            (path.relative_to(base).as_posix(), path.read_text(encoding="utf-8"))
        )
    return out


# --------------------------------------------------------------------------
# program model
# --------------------------------------------------------------------------

_LOCK_FACTORIES = ("threading.Lock", "threading.RLock", "asyncio.Lock")
_EVENT_FACTORIES = ("threading.Event",)
_THREAD_FACTORIES = ("threading.Thread", "concurrent.futures.ThreadPoolExecutor")

#: External calls that block the calling thread (S001).
_BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "fcntl.flock",
        "os.fsync",
        "open",
    }
)
#: Method names that are sync file I/O wherever they appear (S001).
_BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)

_CALL_DEPTH = 3
_LOCK_WALK_DEPTH = 5


@dataclass
class _Func:
    module: "_Module"
    qualname: str  # "Cls.meth", "func", "Cls.meth.<locals>.inner"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None
    parent: str | None  # enclosing function qualname for nested defs

    @property
    def key(self) -> str:
        return f"{self.module.path}::{self.qualname}"

    @property
    def is_async(self) -> bool:
        return isinstance(self.node, ast.AsyncFunctionDef)

    @property
    def simple_name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


@dataclass
class _Class:
    module: "_Module"
    name: str
    node: ast.ClassDef
    # attr -> every definition/construction line (annotation site plus each
    # ``threading.Lock()`` call — the runtime sanitizer keys on the latter).
    lock_attrs: dict[str, list[int]] = field(default_factory=dict)
    event_attrs: dict[str, int] = field(default_factory=dict)
    methods: dict[str, _Func] = field(default_factory=dict)  # simple -> func
    creates_threads: bool = False
    flock_lines: list[int] = field(default_factory=list)
    uses_replace: bool = False
    instantiates: set[str] = field(default_factory=set)  # class keys

    def add_lock_attr(self, attr: str, line: int) -> None:
        self.lock_attrs.setdefault(attr, []).append(line)

    @property
    def key(self) -> str:
        return f"{self.module.path}::{self.name}"


@dataclass
class _Module:
    path: str  # "repro/serve/queue.py"
    dotted: str  # "repro.serve.queue"
    tree: ast.Module
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, _Func] = field(default_factory=dict)  # qualname ->
    classes: dict[str, _Class] = field(default_factory=dict)


def _dotted_of(path: str) -> str:
    parts = path[:-3].split("/")  # strip .py
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _walk_no_nested(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested defs/lambdas/classes."""
    stack: list[ast.AST] = [node]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
            ):
                continue
            stack.append(child)


def _calls_in(node: ast.AST) -> list[ast.Call]:
    return [n for n in _walk_no_nested(node) if isinstance(n, ast.Call)]


def _attr_chain(expr: ast.expr) -> tuple[ast.expr, list[str]]:
    """Unroll ``a.b.c`` into (base expr ``a``, ["b", "c"])."""
    attrs: list[str] = []
    while isinstance(expr, ast.Attribute):
        attrs.append(expr.attr)
        expr = expr.value
    attrs.reverse()
    return expr, attrs


def _is_self(expr: ast.expr) -> bool:
    return isinstance(expr, ast.Name) and expr.id == "self"


class _Program:
    """The whole-program model every S-rule shares (built once per run)."""

    def __init__(self, sources: tuple[tuple[str, str], ...]) -> None:
        self.modules: dict[str, _Module] = {}
        self.by_dotted: dict[str, _Module] = {}
        self.classes: dict[str, _Class] = {}
        self.funcs: dict[str, _Func] = {}
        self.violations: dict[str, list[Violation]] = {
            code: [] for code in ("S001", "S002", "S003", "S004", "S005", "S006")
        }
        for path, text in sources:
            try:
                tree = ast.parse(text)
            except SyntaxError:
                continue
            self._index_module(path, tree)
        for mod in self.modules.values():
            for cls in mod.classes.values():
                self._analyze_class(cls)
        self.lock_graph = self._build_lock_graph()
        self._run_s001()
        self._run_s002()
        self._run_s003()
        self._run_s004()
        self._run_s005()
        self._run_s006()
        for code in self.violations:
            self.violations[code].sort(key=lambda v: (v.module, v.line, v.message))

    # -- indexing ----------------------------------------------------------

    def _index_module(self, path: str, tree: ast.Module) -> None:
        mod = _Module(path=path, dotted=_dotted_of(path), tree=tree)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    mod.imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif isinstance(node, ast.ImportFrom) and node.level:
                # Relative import: resolve against this module's package.
                package = mod.dotted.rsplit(".", node.level)[0]
                target = f"{package}.{node.module}" if node.module else package
                for alias in node.names:
                    mod.imports[alias.asname or alias.name] = (
                        f"{target}.{alias.name}"
                    )
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_func(mod, stmt, cls=None, parent=None)
            elif isinstance(stmt, ast.ClassDef):
                cls = _Class(module=mod, name=stmt.name, node=stmt)
                mod.classes[stmt.name] = cls
                self.classes[cls.key] = cls
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        func = self._register_func(
                            mod, sub, cls=stmt.name, parent=None
                        )
                        cls.methods[sub.name] = func
        self.modules[path] = mod
        self.by_dotted[mod.dotted] = mod

    def _register_func(
        self,
        mod: _Module,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
        parent: str | None,
    ) -> _Func:
        if parent:
            qualname = f"{parent}.<locals>.{node.name}"
        elif cls:
            qualname = f"{cls}.{node.name}"
        else:
            qualname = node.name
        func = _Func(module=mod, qualname=qualname, node=node, cls=cls, parent=parent)
        mod.functions[qualname] = func
        self.funcs[func.key] = func
        for inner in _walk_no_nested(node):
            for child in ast.iter_child_nodes(inner):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._register_func(mod, child, cls=cls, parent=qualname)
        return func

    # -- name resolution ---------------------------------------------------

    def _canon_dotted(self, dotted: str, depth: int = 0) -> str:
        """Map a dotted name onto an internal func/class when possible.

        Returns ``fn:<path>::<qualname>``, ``cls:<path>::<Name>`` or
        ``ext:<dotted>``.  One re-export hop through a package
        ``__init__`` is followed (``repro.cache.open_store`` →
        ``repro.cache.sharded.open_store``).
        """
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            prefix = ".".join(parts[:i])
            mod = self.by_dotted.get(prefix)
            if mod is None:
                continue
            rest = parts[i:]
            if not rest:
                return f"mod:{mod.path}"
            head = rest[0]
            if head in mod.classes:
                if len(rest) >= 2 and f"{head}.{rest[1]}" in mod.functions:
                    return f"fn:{mod.path}::{head}.{rest[1]}"
                return f"cls:{mod.path}::{head}"
            if head in mod.functions:
                return f"fn:{mod.path}::{head}"
            if head in mod.imports and depth < 2:
                tail = "." + ".".join(rest[1:]) if len(rest) > 1 else ""
                return self._canon_dotted(mod.imports[head] + tail, depth + 1)
            break
        return f"ext:{dotted}"

    def _call_target(self, func: _Func, call: ast.Call) -> str:
        """Canonical target of a call expression seen inside *func*."""
        expr = call.func
        mod = func.module
        if isinstance(expr, ast.Name):
            name = expr.id
            if name in mod.imports:
                return self._canon_dotted(mod.imports[name])
            # A nested def visible in the enclosing function.
            scope = func.qualname
            while scope:
                qn = f"{scope}.<locals>.{name}"
                if qn in mod.functions:
                    return f"fn:{mod.path}::{qn}"
                scope = scope.rsplit(".<locals>.", 1)[0] if "<locals>" in scope else ""
            if func.cls and f"{func.cls}.{name}" in mod.functions:
                return f"fn:{mod.path}::{func.cls}.{name}"
            if name in mod.classes:
                return f"cls:{mod.path}::{name}"
            if name in mod.functions:
                return f"fn:{mod.path}::{name}"
            return f"ext:{name}"
        if isinstance(expr, ast.Attribute):
            base, attrs = _attr_chain(expr)
            if _is_self(base) and func.cls is not None and len(attrs) == 1:
                if f"{func.cls}.{attrs[0]}" in mod.functions:
                    return f"fn:{mod.path}::{func.cls}.{attrs[0]}"
                return f"selfattr:{attrs[0]}"
            if isinstance(base, ast.Name):
                root = mod.imports.get(base.id)
                if root is not None:
                    return self._canon_dotted(root + "." + ".".join(attrs))
            return f"attr:{attrs[-1]}"
        return "ext:<dynamic>"

    def _target_func(self, target: str) -> _Func | None:
        if target.startswith("fn:"):
            return self.funcs.get(target[3:])
        if target.startswith("cls:"):
            cls = self.classes.get(target[4:])
            if cls is not None:
                return cls.methods.get("__init__")
        return None

    # -- class attribute typing -------------------------------------------

    _LOCK_ANNOTATION = re.compile(
        r"\b(threading\.Lock|threading\.RLock|asyncio\.Lock)\b"
    )

    def _annotation_lock_kind(self, annotation: ast.expr | None) -> str | None:
        if annotation is None:
            return None
        text = ast.unparse(annotation)
        if not self._LOCK_ANNOTATION.search(text):
            return None
        return "dict" if text.startswith(("dict[", "Dict[")) else "plain"

    def _analyze_class(self, cls: _Class) -> None:
        mod = cls.module
        # Class-body annotations (dataclass fields).
        for stmt in cls.node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                kind = self._annotation_lock_kind(stmt.annotation)
                if kind == "plain":
                    cls.add_lock_attr(stmt.target.id, stmt.lineno)
                elif kind == "dict":
                    cls.add_lock_attr(f"{stmt.target.id}[]", stmt.lineno)
        for func in self._class_funcs(cls):
            node = func.node
            lock_params = {
                a.arg
                for a in list(node.args.args) + list(node.args.kwonlyargs)
                if self._annotation_lock_kind(a.annotation) == "plain"
            }
            for inner in _walk_no_nested(node):
                if isinstance(inner, ast.AnnAssign) and isinstance(
                    inner.target, ast.Attribute
                ):
                    if _is_self(inner.target.value):
                        kind = self._annotation_lock_kind(inner.annotation)
                        if kind == "plain":
                            cls.add_lock_attr(inner.target.attr, inner.lineno)
                        elif kind == "dict":
                            cls.add_lock_attr(
                                f"{inner.target.attr}[]", inner.lineno
                            )
                if isinstance(inner, ast.Assign):
                    self._classify_assign(cls, func, inner, lock_params)
                elif isinstance(inner, ast.Call):
                    target = self._call_target(func, inner)
                    if target.startswith("ext:"):
                        dotted = target[4:]
                        if dotted in _THREAD_FACTORIES:
                            cls.creates_threads = True
                        elif dotted == "fcntl.flock":
                            op = (
                                ast.unparse(inner.args[1])
                                if len(inner.args) > 1
                                else ""
                            )
                            if "LOCK_UN" not in op:
                                cls.flock_lines.append(inner.lineno)
                        elif dotted == "os.replace":
                            cls.uses_replace = True
                    elif target.startswith("cls:"):
                        cls.instantiates.add(target[4:])

    def _classify_assign(
        self,
        cls: _Class,
        func: _Func,
        assign: ast.Assign,
        lock_params: set[str],
    ) -> None:
        for target in assign.targets:
            attr: str | None = None
            if isinstance(target, ast.Attribute) and _is_self(target.value):
                attr = target.attr
            elif (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Attribute)
                and _is_self(target.value.value)
            ):
                attr = f"{target.value.attr}[]"
            if attr is None:
                continue
            value = assign.value
            if isinstance(value, ast.Call):
                resolved = self._call_target(func, value)
                if resolved.startswith("ext:"):
                    dotted = resolved[4:]
                    if dotted in _LOCK_FACTORIES:
                        cls.add_lock_attr(attr, assign.lineno)
                    elif dotted in _EVENT_FACTORIES:
                        cls.event_attrs.setdefault(attr, assign.lineno)
            elif isinstance(value, ast.Name) and value.id in lock_params:
                cls.add_lock_attr(attr, assign.lineno)

    def _class_funcs(self, cls: _Class) -> list[_Func]:
        return [
            f
            for f in cls.module.functions.values()
            if f.cls == cls.name
        ]

    def _class_of(self, func: _Func) -> _Class | None:
        if func.cls is None:
            return None
        return func.module.classes.get(func.cls)

    # -- lock graph (S003 + sanitizer cross-check) ------------------------

    def _lock_node_symbol(self, cls: _Class, attr: str) -> str:
        return f"{cls.key}.{attr}"

    def _with_item_nodes(
        self, func: _Func, expr: ast.expr
    ) -> tuple[list[str], _Func | None]:
        """Lock-graph nodes acquired by one with-item, plus a callee to
        descend into when the item is a context-manager call."""
        cls = self._class_of(func)
        if isinstance(expr, ast.Attribute) and _is_self(expr.value):
            if cls is not None and expr.attr in cls.lock_attrs:
                return [self._lock_node_symbol(cls, expr.attr)], None
        if (
            isinstance(expr, ast.Subscript)
            and isinstance(expr.value, ast.Attribute)
            and _is_self(expr.value.value)
        ):
            attr = f"{expr.value.attr}[]"
            if cls is not None and attr in cls.lock_attrs:
                return [self._lock_node_symbol(cls, attr)], None
        if isinstance(expr, ast.Call):
            callee = self._target_func(self._call_target(func, expr))
            if callee is not None:
                callee_cls = self._class_of(callee)
                if callee_cls is not None and callee_cls.flock_lines and any(
                    True
                    for inner in _walk_no_nested(callee.node)
                    if isinstance(inner, ast.Call)
                    and self._call_target(callee, inner) == "ext:fcntl.flock"
                    and "LOCK_UN"
                    not in (ast.unparse(inner.args[1]) if len(inner.args) > 1 else "")
                ):
                    return [f"{callee_cls.key}.<flock>"], callee
                return [], callee
        return [], None

    def _build_lock_graph(self) -> "LockGraph":
        nodes: dict[str, LockNode] = {}
        for cls in self.classes.values():
            for attr, lines in cls.lock_attrs.items():
                symbol = self._lock_node_symbol(cls, attr)
                nodes[symbol] = LockNode(
                    symbol=symbol,
                    path=cls.module.path,
                    lines=tuple(sorted(set(lines))),
                )
            if cls.flock_lines:
                symbol = f"{cls.key}.<flock>"
                nodes[symbol] = LockNode(
                    symbol=symbol,
                    path=cls.module.path,
                    lines=tuple(sorted(cls.flock_lines)),
                )
        edges: dict[tuple[str, str], str] = {}

        def add_edge(held: str, acquired: str, where: str) -> None:
            if held != acquired:
                edges.setdefault((held, acquired), where)

        def walk(func: _Func, held: tuple[str, ...], depth: int,
                 seen: set[tuple[str, tuple[str, ...]]]) -> None:
            state = (func.key, held)
            if depth > _LOCK_WALK_DEPTH or state in seen:
                return
            seen.add(state)
            self._walk_stmts(func, func.node.body, held, depth, seen, add_edge, walk)

        seen: set[tuple[str, tuple[str, ...]]] = set()
        for func in self.funcs.values():
            walk(func, (), 0, seen)
        seeded: dict[tuple[str, str], str] = {}
        for a, b, why in SEEDED_LOCK_ORDER:
            if a in nodes and b in nodes:
                seeded[(a, b)] = why
        return LockGraph(nodes=nodes, edges=edges, seeded=seeded)

    def _walk_stmts(
        self,
        func: _Func,
        stmts: list[ast.stmt],
        held: tuple[str, ...],
        depth: int,
        seen: set[tuple[str, tuple[str, ...]]],
        add_edge: Any,
        walk: Any,
    ) -> None:
        where = f"{func.module.path}::{func.qualname}"
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: list[str] = []
                for item in stmt.items:
                    symbols, callee = self._with_item_nodes(
                        func, item.context_expr
                    )
                    for symbol in symbols:
                        for h in held:
                            add_edge(h, symbol, where)
                    acquired.extend(symbols)
                    if callee is not None:
                        walk(callee, held, depth + 1, seen)
                self._walk_stmts(
                    func, stmt.body, held + tuple(acquired), depth, seen,
                    add_edge, walk,
                )
            elif isinstance(
                stmt, (ast.If, ast.For, ast.AsyncFor, ast.While, ast.Try)
            ):
                header: list[ast.expr] = []
                if isinstance(stmt, (ast.If, ast.While)):
                    header = [stmt.test]
                elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                    header = [stmt.iter]
                for expr in header:
                    self._walk_calls(func, expr, held, depth, seen, add_edge, walk)
                for body in self._stmt_bodies(stmt):
                    self._walk_stmts(
                        func, body, held, depth, seen, add_edge, walk
                    )
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate entity; walked from the top level
            else:
                self._walk_calls(func, stmt, held, depth, seen, add_edge, walk)

    @staticmethod
    def _stmt_bodies(stmt: ast.stmt) -> list[list[ast.stmt]]:
        bodies: list[list[ast.stmt]] = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if block:
                bodies.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            bodies.append(handler.body)
        return bodies

    def _walk_calls(
        self,
        func: _Func,
        node: ast.AST,
        held: tuple[str, ...],
        depth: int,
        seen: set[tuple[str, tuple[str, ...]]],
        add_edge: Any,
        walk: Any,
    ) -> None:
        where = f"{func.module.path}::{func.qualname}"
        cls = self._class_of(func)
        for call in _calls_in(node):
            if isinstance(call.func, ast.Attribute) and call.func.attr == "acquire":
                base = call.func.value
                if (
                    isinstance(base, ast.Attribute)
                    and _is_self(base.value)
                    and cls is not None
                    and base.attr in cls.lock_attrs
                ):
                    symbol = self._lock_node_symbol(cls, base.attr)
                    for h in held:
                        add_edge(h, symbol, where)
                continue
            target = self._call_target(func, call)
            if target == "ext:fcntl.flock" and cls is not None and cls.flock_lines:
                op = ast.unparse(call.args[1]) if len(call.args) > 1 else ""
                if "LOCK_UN" not in op:
                    symbol = f"{cls.key}.<flock>"
                    for h in held:
                        add_edge(h, symbol, where)
                continue
            callee = self._target_func(target)
            if callee is not None:
                walk(callee, held, depth + 1, seen)

    # -- S001: blocking calls on the event loop ---------------------------

    def _blocking_sites(
        self, func: _Func, depth: int, stack: set[str]
    ) -> list[tuple[str, int, str]]:
        """(description, line, where) of blocking calls reachable from func."""
        if depth > _CALL_DEPTH or func.key in stack:
            return []
        stack = stack | {func.key}
        out: list[tuple[str, int, str]] = []
        for call in _calls_in(func.node):
            target = self._call_target(func, call)
            if target.startswith("ext:") and target[4:] in _BLOCKING_CALLS:
                dotted = target[4:]
                if dotted == "open" and not call.args:
                    continue
                out.append((dotted, call.lineno, func.qualname))
                continue
            if target.startswith("attr:") and target[5:] in _BLOCKING_METHODS:
                out.append((f".{target[5:]}()", call.lineno, func.qualname))
                continue
            callee = self._target_func(target)
            if callee is not None and callee.module is func.module:
                out.extend(self._blocking_sites(callee, depth + 1, stack))
        return out

    def _run_s001(self) -> None:
        loop_roles = self._role_map()
        for func in self.funcs.values():
            roles = loop_roles.get(func.key, frozenset())
            if not (func.is_async or roles == frozenset({"loop"})):
                continue
            for dotted, line, where in self._blocking_sites(func, 0, set()):
                origin = (
                    f"`{func.qualname}`"
                    if where == func.qualname
                    else f"`{where}` (reached from `{func.qualname}`)"
                )
                self.violations["S001"].append(
                    Violation(
                        message=(
                            f"blocking call {dotted} in {origin} runs on the "
                            "event loop; offload it with run_in_executor"
                        ),
                        module=func.module.path,
                        line=line,
                    )
                )
        # Poll-loop variant: time.sleep inside a while loop of a class that
        # owns a threading.Event it should be wait()-ing on instead.
        for cls in self.classes.values():
            if not cls.event_attrs:
                continue
            for func in self._class_funcs(cls):
                if func.is_async:
                    continue
                for inner in _walk_no_nested(func.node):
                    if not isinstance(inner, ast.While):
                        continue
                    for call in _calls_in(inner):
                        if self._call_target(func, call) == "ext:time.sleep":
                            event = sorted(cls.event_attrs)[0]
                            self.violations["S001"].append(
                                Violation(
                                    message=(
                                        f"unconditional time.sleep in the "
                                        f"`{func.qualname}` poll loop ignores "
                                        f"shutdown signals; use "
                                        f"`self.{event}.wait(timeout)` so the "
                                        "loop wakes immediately on stop"
                                    ),
                                    module=func.module.path,
                                    line=call.lineno,
                                )
                            )
        self.violations["S001"] = _dedupe(self.violations["S001"])

    # -- S002: acquire outside with / try-finally -------------------------

    def _run_s002(self) -> None:
        for func in self.funcs.values():
            cls = self._class_of(func)
            local_locks = self._local_lock_vars(func)
            self._s002_stmts(func, cls, local_locks, func.node.body, [])

    def _local_lock_vars(self, func: _Func) -> set[str]:
        out: set[str] = set()
        for inner in _walk_no_nested(func.node):
            if (
                isinstance(inner, ast.Assign)
                and len(inner.targets) == 1
                and isinstance(inner.targets[0], ast.Name)
                and isinstance(inner.value, ast.Call)
            ):
                resolved = self._call_target(func, inner.value)
                if resolved.startswith("ext:") and resolved[4:] in _LOCK_FACTORIES:
                    out.add(inner.targets[0].id)
        return out

    def _s002_stmts(
        self,
        func: _Func,
        cls: _Class | None,
        local_locks: set[str],
        stmts: list[ast.stmt],
        ancestors: list[tuple[list[ast.stmt], int]],
    ) -> None:
        for idx, stmt in enumerate(stmts):
            chain = ancestors + [(stmts, idx)]
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for call in self._header_calls(stmt):
                acquired = self._acquire_repr(func, cls, local_locks, call)
                if acquired is not None and not self._is_guarded(
                    func, cls, local_locks, acquired, chain
                ):
                    self.violations["S002"].append(
                        Violation(
                            message=(
                                f"{acquired} acquired in `{func.qualname}` "
                                "outside `with`/`try-finally`; an exception "
                                "before release leaks the lock"
                            ),
                            module=func.module.path,
                            line=call.lineno,
                        )
                    )
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                self._s002_stmts(func, cls, local_locks, stmt.body, chain)
            else:
                for body in self._stmt_bodies(stmt):
                    self._s002_stmts(func, cls, local_locks, body, chain)

    def _header_calls(self, stmt: ast.stmt) -> list[ast.Call]:
        if isinstance(
            stmt, (ast.If, ast.While, ast.For, ast.AsyncFor, ast.Try,
                   ast.With, ast.AsyncWith)
        ):
            header: list[ast.AST] = []
            if isinstance(stmt, (ast.If, ast.While)):
                header = [stmt.test]
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                header = [stmt.iter]
            # `with lock:` is the guarded idiom itself: not an acquire site.
            return [c for e in header for c in _calls_in(e)]
        return _calls_in(stmt)

    def _acquire_repr(
        self,
        func: _Func,
        cls: _Class | None,
        local_locks: set[str],
        call: ast.Call,
    ) -> str | None:
        """A display name when *call* acquires a tracked lock, else None."""
        if isinstance(call.func, ast.Attribute) and call.func.attr == "acquire":
            base = call.func.value
            if (
                isinstance(base, ast.Attribute)
                and _is_self(base.value)
                and cls is not None
                and base.attr in cls.lock_attrs
            ):
                return f"lock `self.{base.attr}`"
            if isinstance(base, ast.Name) and base.id in local_locks:
                return f"lock `{base.id}`"
            return None
        if self._call_target(func, call) == "ext:fcntl.flock":
            op = ast.unparse(call.args[1]) if len(call.args) > 1 else ""
            if "LOCK_UN" not in op:
                return "flock"
        return None

    def _is_guarded(
        self,
        func: _Func,
        cls: _Class | None,
        local_locks: set[str],
        acquired: str,
        chain: list[tuple[list[ast.stmt], int]],
    ) -> bool:
        for level, (stmts, idx) in enumerate(chain):
            # (a) enclosing try whose finally releases the lock.
            if level + 1 < len(chain):
                stmt = stmts[idx]
                if isinstance(stmt, ast.Try) and self._releases(
                    func, cls, local_locks, acquired, stmt.finalbody
                ):
                    return True
            # (b) a later sibling try-finally releasing it.
            for later in stmts[idx + 1 :]:
                if isinstance(later, ast.Try) and self._releases(
                    func, cls, local_locks, acquired, later.finalbody
                ):
                    return True
        return False

    def _releases(
        self,
        func: _Func,
        cls: _Class | None,
        local_locks: set[str],
        acquired: str,
        stmts: list[ast.stmt],
    ) -> bool:
        for stmt in stmts:
            for call in _calls_in(stmt):
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr == "release"
                ):
                    base = call.func.value
                    if (
                        isinstance(base, ast.Attribute)
                        and _is_self(base.value)
                        and f"lock `self.{base.attr}`" == acquired
                    ):
                        return True
                    if (
                        isinstance(base, ast.Name)
                        and f"lock `{base.id}`" == acquired
                    ):
                        return True
                if acquired == "flock" and self._call_target(
                    func, call
                ) == "ext:fcntl.flock":
                    op = ast.unparse(call.args[1]) if len(call.args) > 1 else ""
                    if "LOCK_UN" in op:
                        return True
        return False

    # -- S003: lock-order cycles ------------------------------------------

    def _run_s003(self) -> None:
        for cycle in self.lock_graph.cycles():
            pretty = " -> ".join(cycle + [cycle[0]])
            anchor = self.lock_graph.nodes.get(cycle[0])
            self.violations["S003"].append(
                Violation(
                    message=(
                        f"lock-order cycle: {pretty}; two threads taking "
                        "these locks in opposite orders deadlock"
                    ),
                    module=anchor.path if anchor else "",
                    line=anchor.lines[0] if anchor else 0,
                )
            )

    # -- S004: unguarded shared read-modify-write -------------------------

    def _role_map(self) -> dict[str, frozenset[str]]:
        """Execution roles per function key: caller / thread / loop."""
        cached = getattr(self, "_roles_cache", None)
        if cached is not None:
            return cached
        roles: dict[str, set[str]] = {}

        def entity_for(cls: _Class, func: _Func, expr: ast.expr) -> _Func | None:
            if isinstance(expr, ast.Attribute) and _is_self(expr.value):
                return cls.methods.get(expr.attr)
            if isinstance(expr, ast.Name):
                qn = f"{func.qualname}.<locals>.{expr.id}"
                return func.module.functions.get(qn)
            return None

        def mark(func: _Func | None, role: str) -> None:
            if func is not None:
                roles.setdefault(func.key, set()).add(role)

        for cls in self.classes.values():
            if not cls.creates_threads:
                continue
            for func in self._class_funcs(cls):
                name = func.simple_name
                if func.is_async:
                    mark(func, "loop")
                if (
                    func.parent is None
                    and not name.startswith("_")
                    or name in ("__enter__", "__exit__")
                ):
                    mark(func, "caller")
                for call in _calls_in(func.node):
                    target = self._call_target(func, call)
                    callable_args: list[tuple[ast.expr, str]] = []
                    if target.startswith("ext:") and target[4:] in _THREAD_FACTORIES:
                        for kw in call.keywords:
                            if kw.arg == "target":
                                callable_args.append((kw.value, "thread"))
                    if isinstance(call.func, ast.Attribute):
                        attr = call.func.attr
                        if attr in ("submit", "run_in_executor"):
                            args = call.args[1:] if attr == "run_in_executor" else call.args
                            if args:
                                callable_args.append((args[0], "thread"))
                        elif attr in ("call_soon", "call_soon_threadsafe"):
                            if call.args:
                                callable_args.append((call.args[0], "loop"))
                        elif attr == "add_done_callback" and call.args:
                            arg = call.args[0]
                            if isinstance(arg, ast.Lambda):
                                for sub in _calls_in(arg.body):
                                    mark(
                                        entity_for(cls, func, sub.func), "loop"
                                    )
                            else:
                                callable_args.append((arg, "loop"))
                    for expr, role in callable_args:
                        mark(entity_for(cls, func, expr), role)
        # Fixpoint: propagate roles through direct self-calls, nested-def
        # inheritance, and parameter-forwarding helpers like
        # FairScheduler._call (whose nested runner calls its fn parameter on
        # the loop thread, giving every closure passed to it the loop role).
        for _ in range(10):
            changed = False
            for cls in self.classes.values():
                if not cls.creates_threads:
                    continue
                forward: dict[str, set[str]] = {}
                for func in self._class_funcs(cls):
                    params = {
                        a.arg
                        for a in func.node.args.args
                        if a.arg != "self"
                    }
                    owner = func
                    while owner.parent is not None:
                        parent = func.module.functions.get(owner.parent)
                        if parent is None:
                            break
                        owner = parent
                    for call in _calls_in(func.node):
                        if (
                            isinstance(call.func, ast.Name)
                            and call.func.id in params
                        ):
                            forward.setdefault(
                                func.simple_name, set()
                            ).update(roles.get(func.key, set()))
                        # Nested defs calling the *enclosing* function's
                        # parameter forward that enclosing entity's role.
                        enclosing = func.parent
                        while enclosing is not None:
                            parent_func = func.module.functions.get(enclosing)
                            if parent_func is None:
                                break
                            parent_params = {
                                a.arg
                                for a in parent_func.node.args.args
                                if a.arg != "self"
                            }
                            if (
                                isinstance(call.func, ast.Name)
                                and call.func.id in parent_params
                            ):
                                forward.setdefault(
                                    parent_func.simple_name, set()
                                ).update(roles.get(func.key, set()))
                            enclosing = parent_func.parent
                for func in self._class_funcs(cls):
                    mine = roles.get(func.key, set())
                    for call in _calls_in(func.node):
                        target = self._call_target(func, call)
                        callee = self._target_func(target)
                        if (
                            callee is not None
                            and callee.cls == cls.name
                            and callee.module is func.module
                        ):
                            fwd = forward.get(callee.simple_name)
                            if fwd:
                                for arg in call.args:
                                    ent = None
                                    if isinstance(arg, ast.Name):
                                        qn = f"{func.qualname}.<locals>.{arg.id}"
                                        ent = func.module.functions.get(qn)
                                    elif isinstance(
                                        arg, ast.Attribute
                                    ) and _is_self(arg.value):
                                        ent = cls.methods.get(arg.attr)
                                    if ent is not None:
                                        before = roles.setdefault(
                                            ent.key, set()
                                        )
                                        if not fwd <= before:
                                            before.update(fwd)
                                            changed = True
                            if mine and callee.parent is not None:
                                before = roles.setdefault(callee.key, set())
                                if not mine <= before:
                                    before.update(mine)
                                    changed = True
                    # Nested defs with no explicit dispatch inherit their
                    # enclosing entity's roles.
                    if func.parent is not None and func.key not in roles:
                        parent = func.module.functions.get(func.parent)
                        if parent is not None and parent.key in roles:
                            roles[func.key] = set(roles[parent.key])
                            changed = True
            if not changed:
                break
        result = {k: frozenset(v) for k, v in roles.items()}
        self._roles_cache = result
        return result

    def _run_s004(self) -> None:
        roles = self._role_map()
        for cls in self.classes.values():
            if not cls.creates_threads:
                continue
            # attr -> union of roles across every accessor entity.
            access_roles: dict[str, set[str]] = {}
            aug_writes: dict[str, list[tuple[_Func, int, bool]]] = {}
            plain_reads: dict[str, list[tuple[_Func, int, bool]]] = {}
            for func in self._class_funcs(cls):
                if func.simple_name == "__init__":
                    continue
                my_roles = roles.get(func.key, frozenset())
                for attr, line, is_aug, guarded in self._self_accesses(
                    cls, func
                ):
                    access_roles.setdefault(attr, set()).update(my_roles)
                    if is_aug:
                        aug_writes.setdefault(attr, []).append(
                            (func, line, guarded)
                        )
                    else:
                        plain_reads.setdefault(attr, []).append(
                            (func, line, guarded)
                        )
            for attr, writes in sorted(aug_writes.items()):
                if len(access_roles.get(attr, set())) < 2:
                    continue  # single-role attribute: no interleaving
                unguarded_writes = [w for w in writes if not w[2]]
                for func, line, _ in unguarded_writes:
                    self.violations["S004"].append(
                        Violation(
                            message=(
                                f"read-modify-write of shared attribute "
                                f"`self.{attr}` in `{func.qualname}` has no "
                                "dominating lock; concurrent updates lose "
                                "increments"
                            ),
                            module=func.module.path,
                            line=line,
                        )
                    )
                if unguarded_writes:
                    continue  # the write side is the report; reads follow it
                # Read variant: every writer updates the attribute under a
                # lock, so the lock is the attribute's coherence protocol —
                # a lockless read elsewhere sees mid-update state (e.g. a
                # `done + failed` sum torn across two locked increments).
                for func, line, guarded in plain_reads.get(attr, ()):
                    if guarded:
                        continue
                    self.violations["S004"].append(
                        Violation(
                            message=(
                                f"unguarded read of shared attribute "
                                f"`self.{attr}` in `{func.qualname}`; every "
                                "writer holds a lock, so the read bypasses "
                                "the attribute's coherence protocol"
                            ),
                            module=func.module.path,
                            line=line,
                        )
                    )

    def _self_accesses(
        self, cls: _Class, func: _Func
    ) -> list[tuple[str, int, bool, bool]]:
        """(attr, line, is_aug_write, lock_guarded) for self.X accesses."""
        out: list[tuple[str, int, bool, bool]] = []

        def locked_item(expr: ast.expr) -> bool:
            if isinstance(expr, ast.Attribute) and _is_self(expr.value):
                return expr.attr in cls.lock_attrs
            if (
                isinstance(expr, ast.Subscript)
                and isinstance(expr.value, ast.Attribute)
                and _is_self(expr.value.value)
            ):
                return f"{expr.value.attr}[]" in cls.lock_attrs
            if isinstance(expr, ast.Call):
                callee = self._target_func(self._call_target(func, expr))
                if callee is not None:
                    callee_cls = self._class_of(callee)
                    return callee_cls is not None and bool(
                        callee_cls.flock_lines
                    )
            return False

        def visit(stmts: list[ast.stmt], guarded: bool) -> None:
            for stmt in stmts:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(stmt, (ast.With, ast.AsyncWith)):
                    now = guarded or any(
                        locked_item(i.context_expr) for i in stmt.items
                    )
                    visit(stmt.body, now)
                    continue
                if isinstance(stmt, ast.AugAssign) and isinstance(
                    stmt.target, ast.Attribute
                ) and _is_self(stmt.target.value):
                    out.append(
                        (stmt.target.attr, stmt.lineno, True, guarded)
                    )
                for node in _walk_no_nested(stmt):
                    if (
                        isinstance(node, ast.Attribute)
                        and _is_self(node.value)
                        and isinstance(node.ctx, ast.Load)
                        and node.attr not in cls.lock_attrs
                    ):
                        out.append((node.attr, node.lineno, False, guarded))
                for body in self._stmt_bodies(stmt):
                    visit(body, guarded)
        visit(func.node.body, False)
        return out

    # -- S005: non-atomic publish in multi-process classes ----------------

    def _mp_classes(self) -> list[_Class]:
        direct = {
            cls.key
            for cls in self.classes.values()
            if cls.flock_lines or cls.uses_replace
        }
        out: list[_Class] = []
        for cls in self.classes.values():
            if cls.key in direct or (cls.instantiates & direct):
                out.append(cls)
        return out

    def _reaches_replace(self, func: _Func, depth: int, stack: set[str]) -> bool:
        if depth > _CALL_DEPTH or func.key in stack:
            return False
        stack = stack | {func.key}
        for call in _calls_in(func.node):
            target = self._call_target(func, call)
            if target == "ext:os.replace":
                return True
            callee = self._target_func(target)
            if callee is not None and callee.module is func.module:
                if self._reaches_replace(callee, depth + 1, stack):
                    return True
        return False

    def _self_derived_vars(self, func: _Func) -> set[str]:
        derived: set[str] = set()
        for inner in _walk_no_nested(func.node):
            targets: list[ast.expr]
            if isinstance(inner, ast.Assign):
                targets, source = list(inner.targets), inner.value
            elif isinstance(inner, (ast.For, ast.AsyncFor)):
                targets, source = [inner.target], inner.iter
            else:
                continue
            names = {
                n.id
                for n in _walk_no_nested(source)
                if isinstance(n, ast.Name)
            }
            if "self" not in names and not (names & derived):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    derived.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            derived.add(elt.id)
        return derived

    def _is_self_derived(self, expr: ast.expr, derived: set[str]) -> bool:
        for node in _walk_no_nested(expr):
            if isinstance(node, ast.Name) and (
                node.id == "self" or node.id in derived
            ):
                return True
        return False

    def _run_s005(self) -> None:
        for cls in self._mp_classes():
            for func in self._class_funcs(cls):
                self._s005_writes(cls, func)
                self._s005_json(cls, func)
            if self._class_mentions_rank(cls):
                for func in self._class_funcs(cls):
                    self._s005_rank(cls, func)

    def _s005_writes(self, cls: _Class, func: _Func) -> None:
        derived = self._self_derived_vars(func)
        atomic = self._reaches_replace(func, 0, set())
        for call in _calls_in(func.node):
            site: str | None = None
            target_expr: ast.expr | None = None
            if isinstance(call.func, ast.Attribute):
                attr = call.func.attr
                base = call.func.value
                if attr == "write_text":
                    site, target_expr = "write_text", base
                elif attr == "unlink":
                    site, target_expr = "unlink", base
                elif attr == "open":
                    mode = ""
                    if call.args and isinstance(call.args[0], ast.Constant):
                        mode = str(call.args[0].value)
                    if "w" in mode and "a" not in mode:
                        site, target_expr = 'open("w")', base
            elif isinstance(call.func, ast.Name) and call.func.id == "open":
                mode = ""
                if len(call.args) > 1 and isinstance(call.args[1], ast.Constant):
                    mode = str(call.args[1].value)
                if call.args and "w" in mode and "a" not in mode:
                    site, target_expr = 'open("w")', call.args[0]
            if site is None or target_expr is None:
                continue
            if not self._is_self_derived(target_expr, derived):
                continue  # caller-owned path (export targets etc.)
            # Writes to a *.tmp staging file are the atomic idiom's own
            # first half; they are judged by whether os.replace follows.
            if atomic:
                continue
            what = (
                "destructive unlink"
                if site == "unlink"
                else f"in-place {site} rewrite"
            )
            self.violations["S005"].append(
                Violation(
                    message=(
                        f"{what} of a shared path in `{func.qualname}` with "
                        "no reachable os.replace; other processes can read "
                        "a half-written or vanished file — use the tmp-file "
                        "+ os.replace idiom"
                    ),
                    module=func.module.path,
                    line=call.lineno,
                )
            )

    def _s005_json(self, cls: _Class, func: _Func) -> None:
        guarded_spans: list[tuple[int, int]] = []
        for inner in _walk_no_nested(func.node):
            if isinstance(inner, ast.Try) and inner.handlers:
                handled = " ".join(
                    ast.unparse(h.type) for h in inner.handlers if h.type
                )
                if any(
                    token in handled
                    for token in ("JSONDecodeError", "ValueError", "Exception")
                ):
                    end = max(
                        getattr(n, "end_lineno", inner.lineno)
                        for n in inner.body
                    )
                    guarded_spans.append((inner.lineno, end))
        for call in _calls_in(func.node):
            if self._call_target(func, call) != "ext:json.loads":
                continue
            line = call.lineno
            if any(lo <= line <= hi for lo, hi in guarded_spans):
                continue
            self.violations["S005"].append(
                Violation(
                    message=(
                        f"unguarded json.loads in `{func.qualname}` of a "
                        "multi-process class; a corrupt line from a crashed "
                        "writer crashes every reader — catch "
                        "JSONDecodeError and count the skip"
                    ),
                    module=func.module.path,
                    line=line,
                )
            )

    def _class_mentions_rank(self, cls: _Class) -> bool:
        return any(
            isinstance(n, ast.Name) and n.id == "FULL_RANK"
            for n in ast.walk(cls.node)
        )

    def _s005_rank(self, cls: _Class, func: _Func) -> None:
        """Rank-blind revalidation: a method answering from an index hit must
        refresh before trusting a below-full-rank record."""
        index_vars: set[str] = set()
        for inner in _walk_no_nested(func.node):
            if (
                isinstance(inner, ast.Assign)
                and len(inner.targets) == 1
                and isinstance(inner.targets[0], ast.Name)
                and isinstance(inner.value, ast.Call)
                and isinstance(inner.value.func, ast.Attribute)
                and inner.value.func.attr == "get"
            ):
                base = inner.value.func.value
                if (
                    isinstance(base, ast.Attribute)
                    and _is_self(base.value)
                    and "index" in base.attr
                ):
                    index_vars.add(inner.targets[0].id)
        if not index_vars:
            return
        returns_hit = any(
            isinstance(n, ast.Return)
            and n.value is not None
            and any(
                isinstance(sub, ast.Name) and sub.id in index_vars
                for sub in _walk_no_nested(n.value)
            )
            for n in _walk_no_nested(func.node)
        )
        if not returns_hit:
            return
        for inner in _walk_no_nested(func.node):
            if not isinstance(inner, ast.If):
                continue
            has_refresh = any(
                isinstance(c.func, ast.Attribute)
                and c.func.attr == "refresh"
                and _is_self(c.func.value)
                for c in _calls_in(inner)
            )
            if not has_refresh:
                continue
            test = ast.unparse(inner.test)
            if "rank" in test or "FULL_RANK" in test:
                continue
            self.violations["S005"].append(
                Violation(
                    message=(
                        f"rank-blind revalidation in `{func.qualname}`: the "
                        "refresh guard never checks the hit's rank, so a "
                        "below-full-rank probe hit is served stale while "
                        "another process's full-route record is ignored"
                    ),
                    module=func.module.path,
                    line=inner.lineno,
                )
            )

    # -- S006: fire-and-forget tasks --------------------------------------

    def _run_s006(self) -> None:
        for func in self.funcs.values():
            for stmt in _walk_no_nested(func.node):
                if not (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Call)
                ):
                    continue
                call = stmt.value
                target = self._call_target(func, call)
                loose = (
                    isinstance(call.func, ast.Attribute)
                    and call.func.attr in ("create_task", "ensure_future")
                )
                if target in (
                    "ext:asyncio.create_task",
                    "ext:asyncio.ensure_future",
                ) or loose:
                    self.violations["S006"].append(
                        Violation(
                            message=(
                                f"fire-and-forget task in `{func.qualname}`: "
                                "the returned task is never awaited or "
                                "exception-handled, so failures vanish "
                                "silently — keep a reference and consume "
                                "its result"
                            ),
                            module=func.module.path,
                            line=call.lineno,
                        )
                    )


def _dedupe(violations: list[Violation]) -> list[Violation]:
    seen: set[tuple[str, str, int]] = set()
    out: list[Violation] = []
    for v in violations:
        key = (v.message, v.module, v.line)
        if key not in seen:
            seen.add(key)
            out.append(v)
    return out


# --------------------------------------------------------------------------
# the lock graph (shared with the runtime sanitizer)
# --------------------------------------------------------------------------

#: Known orderings the static walk cannot fully recover (the member locks
#: are handed to :class:`~repro.serve.fleet.SchedulerBoundEvaluator` as
#: plain constructor arguments): fleet registry lock strictly precedes any
#: member lock, and a member evaluation holds its member lock across store
#: appends (which take the store's flock).
SEEDED_LOCK_ORDER: tuple[tuple[str, str, str], ...] = (
    (
        "repro/serve/fleet.py::EvaluatorFleet._lock",
        "repro/serve/fleet.py::EvaluatorFleet._member_locks[]",
        "the fleet registry lock is released before any member lock is taken",
    ),
    (
        "repro/serve/fleet.py::EvaluatorFleet._member_locks[]",
        "repro/cache/store.py::ResultStore.<flock>",
        "a member evaluation holds its member lock across store appends",
    ),
    (
        "repro/serve/fleet.py::EvaluatorFleet._lock",
        "repro/cache/store.py::ResultStore.<flock>",
        "opening a member's store handle happens under the registry lock",
    ),
    (
        "repro/serve/fleet.py::_ConcurrentMember._state_lock",
        "repro/cache/store.py::ResultStore.<flock>",
        "committing a fresh result holds the member state lock across the"
        " store append (which takes the store's flock)",
    ),
    (
        "repro/serve/fleet.py::_ConcurrentMember._state_lock",
        "repro/observe/ledger.py::RunLedger._lock",
        "memo/store/DRC answers are ledgered under the member state lock",
    ),
    (
        "repro/serve/fleet.py::_ConcurrentMember._state_lock",
        "repro/observe/counters.py::Counters._lock",
        "telemetry counters are bumped under the member state lock",
    ),
    (
        "repro/serve/fleet.py::EvaluatorFleet._member_locks[]",
        "repro/observe/ledger.py::RunLedger._lock",
        "the legacy member-lock path ledgers while holding the member lock",
    ),
    (
        "repro/serve/fleet.py::EvaluatorFleet._member_locks[]",
        "repro/observe/counters.py::Counters._lock",
        "the legacy member-lock path counts while holding the member lock",
    ),
)


@dataclass(frozen=True)
class LockNode:
    """One statically-known lock: a symbolic name plus its definition site."""

    symbol: str  # "repro/serve/fleet.py::EvaluatorFleet._lock"
    path: str
    lines: tuple[int, ...]


@dataclass
class LockGraph:
    """The static lock acquisition graph S003 checks for cycles."""

    nodes: dict[str, LockNode]
    edges: dict[tuple[str, str], str]
    seeded: dict[tuple[str, str], str]

    def all_edges(self) -> dict[tuple[str, str], str]:
        merged = dict(self.edges)
        merged.update(self.seeded)
        return merged

    def has_edge(self, a: str, b: str) -> bool:
        return (a, b) in self.edges or (a, b) in self.seeded

    def node_at(self, path: str, line: int) -> str | None:
        """The symbol defined at ``(path, line)`` — how runtime lock
        creation sites map back onto the static graph."""
        for node in self.nodes.values():
            if node.path == path and line in node.lines:
                return node.symbol
        return None

    def cycles(self) -> list[list[str]]:
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.nodes)
        graph.add_edges_from(self.all_edges())
        return [sorted(c) for c in nx.simple_cycles(graph)]


def static_lock_graph(
    sources: tuple[tuple[str, str], ...] | list[tuple[str, str]]
) -> LockGraph:
    """Build the S003 lock graph for a source set (sanitizer cross-check)."""
    return _Program(tuple(sources)).lock_graph


# --------------------------------------------------------------------------
# rule registration
# --------------------------------------------------------------------------


def _model(ctx: RuleContext) -> _Program | None:
    if not ctx.py_sources:
        return None
    prog = ctx.cache.get("concurrency-program")
    if prog is None:
        prog = _Program(ctx.py_sources)
        ctx.cache["concurrency-program"] = prog
    return prog  # type: ignore[no-any-return]


def _replay(ctx: RuleContext, code: str) -> Iterator[Violation]:
    prog = _model(ctx)
    if prog is not None:
        yield from prog.violations[code]


@rule(
    "S001",
    "async-blocking-call",
    Severity.ERROR,
    Stage.CONCURRENCY,
    "Blocking call (sleep, sync I/O, subprocess, flock) reachable from "
    "event-loop code without run_in_executor, or an unconditional sleep "
    "in a poll loop that owns a threading.Event",
)
def check_async_blocking(ctx: RuleContext) -> Iterator[Violation]:
    yield from _replay(ctx, "S001")


@rule(
    "S002",
    "unguarded-lock-acquire",
    Severity.ERROR,
    Stage.CONCURRENCY,
    "Lock or flock acquired outside with/try-finally: an exception "
    "between acquire and release leaks the lock",
)
def check_unguarded_acquire(ctx: RuleContext) -> Iterator[Violation]:
    yield from _replay(ctx, "S002")


@rule(
    "S003",
    "lock-order-cycle",
    Severity.ERROR,
    Stage.CONCURRENCY,
    "Cycle in the static lock acquisition graph across threading/asyncio "
    "locks and flock sites (deadlock when taken in opposite orders)",
)
def check_lock_order(ctx: RuleContext) -> Iterator[Violation]:
    yield from _replay(ctx, "S003")


@rule(
    "S004",
    "unguarded-shared-write",
    Severity.ERROR,
    Stage.CONCURRENCY,
    "Read-modify-write of an attribute shared between scheduler-loop and "
    "thread roles with no dominating lock acquisition",
)
def check_shared_writes(ctx: RuleContext) -> Iterator[Violation]:
    yield from _replay(ctx, "S004")


@rule(
    "S005",
    "non-atomic-publish",
    Severity.ERROR,
    Stage.CONCURRENCY,
    "Multi-process class publishes shared state without the tmp-file + "
    "os.replace idiom, reads it without corruption guards, or serves "
    "index hits without rank-aware revalidation",
)
def check_atomic_publish(ctx: RuleContext) -> Iterator[Violation]:
    yield from _replay(ctx, "S005")


@rule(
    "S006",
    "fire-and-forget-task",
    Severity.WARNING,
    Stage.CONCURRENCY,
    "asyncio.create_task/ensure_future whose result is never awaited or "
    "exception-handled: failures vanish silently",
)
def check_fire_and_forget(ctx: RuleContext) -> Iterator[Violation]:
    yield from _replay(ctx, "S006")
