"""Dataflow-stage rules (D codes): parameter flow + interval analysis.

Where the elaboration rules (P codes) reason about one *concrete* point,
this stage reasons about the whole declared space at once:

- :class:`StaticSpaceAnalysis` abstractly evaluates every port-range
  expression over the interval hull of each DSE dimension — mirroring
  :func:`repro.analysis.elaboration_rules.resolve_point_environment`
  pass-for-pass — and derives, per dimension, the exact value subsets
  that make the design *definitely* infeasible (null port ranges,
  ``$clog2`` domain errors, division by zero, subtype violations);
- :class:`~repro.hdl.dataflow.ParameterDependencyGraph` answers which
  parameters matter at all;
- :func:`prune_space` turns both into a tightened
  :class:`~repro.core.spaces.ParameterSpace` before the GA ever samples.

Soundness contract (the gate relies on it): a point is reported
infeasible here **only** when the full design rule checker would
certainly report at least one ERROR-severity finding for it.  Anything
the interval analysis cannot decide falls through to the per-point
checker, so enabling the static layer never changes a feasibility
verdict — it only removes elaboration calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional, Sequence

import numpy as np

from repro.analysis.elaboration_rules import _width_refs_of
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule
from repro.hdl.ast import HdlLanguage, Module, Parameter
from repro.hdl.dataflow import (
    BodyScan,
    ParameterDependencyGraph,
    scan_for,
)
from repro.hdl.interval import AbstractInt, Interval, evaluate_abstract

__all__ = ["StaticSpaceAnalysis", "PruneReport", "prune_space"]

# Dimensions with more values than this are not swept per-value; their
# points simply keep falling through to the per-point checker.
_MAX_SWEEP = 8192


def _has_architectural_model(module: Module) -> bool:
    """Modules with a registered elaboration model consume parameters the
    RTL body scan cannot see (the model builds the netlist directly), so
    body-based liveness verdicts do not apply to them."""
    from repro.synth.elaborate import registered_models

    return module.name.lower() in registered_models()


# ---------------------------------------------------------------------------
# the static space analysis
# ---------------------------------------------------------------------------


class StaticSpaceAnalysis:
    """Interval analysis of one module's interface over one parameter space.

    ``applicable`` is False when the space does not line up with the
    module's free parameters (unknown or local dimension names) — every
    query then degrades to "cannot decide" and the callers fall back to
    per-point checking.
    """

    def __init__(self, module: Module, space, scan: Optional[BodyScan] = None):
        self.module = module
        self.space = space
        self.scan = scan
        self._params: dict[str, Parameter] = {
            p.name.lower(): p for p in module.parameters
        }
        self._dims: dict[str, object] = {}
        self.applicable = space is not None
        if self.applicable:
            for dim in space:
                param = self._params.get(dim.name.lower())
                if param is None or param.local:
                    self.applicable = False
                    break
                self._dims[dim.name.lower()] = dim
        self.always_reasons: tuple[str, ...] = ()
        self.skipped_dims: tuple[str, ...] = ()
        self._pass1: dict[str, AbstractInt] = {}
        self._boxes: dict[str, AbstractInt] = {}
        self._masks: Optional[dict[str, dict[int, str]]] = None
        self._luts: Optional[list[np.ndarray]] = None

    # -- environment construction ---------------------------------------

    def _dim_values(self, dim) -> Optional[list[int]]:
        if dim.cardinality() > _MAX_SWEEP:
            return None
        return dim.values()

    def _hull_interval(self, dim) -> Interval:
        values = self._dim_values(dim)
        if values is not None:
            return Interval(min(values), max(values))
        # Every built-in dimension decodes monotonically; for oversized
        # custom ones the endpoint hull is still a safe overapproximation
        # only if decode is monotone, so widen via both endpoints.
        return Interval.span(dim.decode(dim.low), dim.decode(dim.high))

    def _pass1_defaults(self) -> dict[str, AbstractInt]:
        """Abstract mirror of ``module.default_environment()``: defaults
        threaded in declaration order, unevaluable ones left unbound."""
        env: dict[str, AbstractInt] = {}
        for p in self.module.parameters:
            if p.default is None:
                continue
            r = evaluate_abstract(p.default, env)
            if r.definitely_fails():
                continue
            env[p.name] = r
        return env

    def _compute_boxes(self, pass1: Mapping[str, AbstractInt]) -> None:
        """Per-dimension abstract value when the dimension is *not* pinned:
        bound somewhere in its hull, or left at its pass-1 default (a gate
        query may bind any subset of the dimensions)."""
        for key, dim in self._dims.items():
            param = self._params[key]
            hull = self._hull_interval(dim)
            prior = pass1.get(param.name)
            if prior is None:
                self._boxes[key] = AbstractInt(hull, may_fail=True)
            else:
                assert prior.interval is not None
                self._boxes[key] = AbstractInt(
                    hull.join(prior.interval), prior.may_fail
                )

    def _env(self, pinned: Mapping[str, AbstractInt]) -> dict[str, AbstractInt]:
        """Abstract mirror of ``resolve_point_environment``.

        Pass 1 defaults, pass 2 overrides (pinned dims exactly, the other
        dimensions at their box value), pass 3 localparams re-derived —
        keeping the pass-1 binding wherever re-derivation *may* fail,
        exactly like the concrete resolver keeps the old value on failure.
        """
        env = dict(self._pass1)
        for p in self.module.parameters:
            if p.local:
                continue
            key = p.name.lower()
            if key in pinned:
                env[p.name] = pinned[key]
            elif key in self._boxes:
                env[p.name] = self._boxes[key]
        for p in self.module.parameters:
            if not p.local or p.default is None:
                continue
            r = evaluate_abstract(p.default, env)
            if r.definitely_fails():
                continue  # concrete resolver keeps the old binding
            old = env.get(p.name)
            if not r.may_fail or old is None:
                env[p.name] = r
            else:
                assert r.interval is not None
                joined = (
                    r.interval
                    if old.interval is None
                    else r.interval.join(old.interval)
                )
                env[p.name] = AbstractInt(joined, old.may_fail)
        return env

    # -- the checks ------------------------------------------------------

    def _port_violations(
        self, env: Mapping[str, AbstractInt]
    ) -> tuple[list[str], bool]:
        """Definite P001/P002 violations over ``env``'s region.

        Returns ``(reasons, undecided)``: ``reasons`` hold only *definite*
        facts (every point in the region fails the checker); ``undecided``
        is True when some point of the region *might* fail, so per-value
        sweeps are worth running.
        """
        reasons: list[str] = []
        undecided = False
        vhdl = self.module.language == HdlLanguage.VHDL
        for port in self.module.ports:
            if not port.ptype.is_vector():
                continue
            hi = evaluate_abstract(port.ptype.high, env)
            lo = (
                evaluate_abstract(port.ptype.low, env)
                if port.ptype.low is not None
                else AbstractInt.exact(0)
            )
            if hi.definitely_fails() or lo.definitely_fails():
                reasons.append(
                    f"port {port.name!r} range is never evaluable here "
                    "(unconditional $clog2 domain error / division by zero "
                    "/ unbound name)"
                )
                continue
            assert hi.interval is not None and lo.interval is not None
            if hi.may_fail or lo.may_fail:
                undecided = True
            referenced = vhdl or bool(_width_refs_of(port))
            if not referenced:
                # P001 skips parameter-free Verilog ranges (ascending
                # index numbering is legal), so a null range here is fine.
                continue
            if (
                hi.interval.hi is not None
                and lo.interval.lo is not None
                and hi.interval.hi < lo.interval.lo
            ):
                # Wherever the bounds evaluate the range is null (P001);
                # wherever they do not, P002 fires instead.  Either way
                # the checker errors at every point of the region.
                reasons.append(
                    f"port {port.name!r} always elaborates to a null range "
                    f"(high in {hi.interval}, low in {lo.interval})"
                )
            elif not (
                hi.interval.lo is not None
                and lo.interval.hi is not None
                and hi.interval.lo >= lo.interval.hi
            ):
                undecided = True  # the range may collapse for some values
        return reasons, undecided

    @staticmethod
    def _subtype_reason(param: Parameter, value: int) -> Optional[str]:
        """Mirror of rule P005 for one (parameter, value) pair."""
        ptype = param.ptype.lower()
        if ptype == "natural" and value < 0:
            return f"natural generic {param.name!r} must be >= 0"
        if ptype == "positive" and value < 1:
            return f"positive generic {param.name!r} must be >= 1"
        if param.is_boolean() and value not in (0, 1):
            return f"{param.ptype} parameter {param.name!r} takes only 0/1"
        return None

    # -- mask computation ------------------------------------------------

    def run(self) -> None:
        """Compute the per-dimension infeasible-value masks (idempotent)."""
        if self._masks is not None or not self.applicable:
            return
        masks: dict[str, dict[int, str]] = {key: {} for key in self._dims}
        self._pass1 = self._pass1_defaults()
        self._compute_boxes(self._pass1)

        for key, dim in self._dims.items():
            values = self._dim_values(dim)
            if values is None:
                continue
            param = self._params[key]
            for v in values:
                reason = self._subtype_reason(param, v)
                if reason is not None:
                    masks[key][v] = reason

        reasons, undecided = self._port_violations(self._env({}))
        if reasons:
            # The whole box is infeasible; per-value masks are moot.
            self.always_reasons = tuple(reasons)
            self._masks = masks
            return

        if undecided:
            # Sweep only dimensions whose value can actually reach a port
            # range expression; the others cannot flip P001/P002 verdicts.
            graph = ParameterDependencyGraph(module=self.module, scan=self.scan)
            skipped: list[str] = []
            for key, dim in self._dims.items():
                if not any(
                    s.kind == "port-range" for s in graph.flows(key)
                ):
                    continue
                values = self._dim_values(dim)
                if values is None:
                    skipped.append(dim.name)
                    continue
                for v in values:
                    if v in masks[key]:
                        continue
                    hit, _ = self._port_violations(
                        self._env({key: AbstractInt.exact(v)})
                    )
                    if hit:
                        masks[key][v] = hit[0]
            self.skipped_dims = tuple(skipped)
        self._masks = masks

    def mask_of(self, dim_name: str) -> Mapping[int, str]:
        """Decoded value → reason, for one dimension (after :meth:`run`)."""
        self.run()
        if self._masks is None:
            return {}
        return self._masks.get(dim_name.lower(), {})

    def infeasible_runs(self, dim_name: str) -> list[tuple[int, int, str]]:
        """Contiguous (in encoded order) infeasible value runs of one dim."""
        self.run()
        dim = self._dims.get(dim_name.lower())
        if dim is None or self._masks is None:
            return []
        mask = self._masks[dim_name.lower()]
        values = self._dim_values(dim)
        if values is None or not mask:
            return []
        runs: list[tuple[int, int, str]] = []
        start: Optional[int] = None
        for v in values:
            if v in mask:
                if start is None:
                    start = v
                last = v
            elif start is not None:
                runs.append((start, last, mask[start]))
                start = None
        if start is not None:
            runs.append((start, last, mask[start]))
        return runs

    def fully_infeasible_dims(self) -> tuple[str, ...]:
        """Dimensions for which *every* value is statically infeasible."""
        self.run()
        if self._masks is None:
            return ()
        out: list[str] = []
        for key, dim in self._dims.items():
            values = self._dim_values(dim)
            if values is None or not values:
                continue
            if all(v in self._masks[key] for v in values):
                out.append(dim.name)
        return tuple(out)

    def box_env(self) -> dict[str, AbstractInt]:
        """The abstract environment of the whole declared space."""
        self.run()
        if self._masks is None:
            return {
                name: AbstractInt.exact(value)
                for name, value in self.module.default_environment().items()
            }
        return self._env({})

    # -- queries the gate consumes --------------------------------------

    def reject_findings(
        self, params: Mapping[str, int]
    ) -> Optional[tuple[Finding, ...]]:
        """Definite-infeasible findings for ``params``, or None.

        None means "cannot decide statically" — the caller must run the
        per-point checker.  A non-None result is a soundness promise:
        the checker would certainly report ERROR findings for this point.
        """
        if not self.applicable:
            return None
        self.run()
        assert self._masks is not None
        norm: dict[str, int] = {}
        for name, value in params.items():
            key = name.lower()
            if key not in self._dims:
                return None  # unknown/extra binding: P004 territory
            norm[key] = int(value)
        for key, value in norm.items():
            box = self._boxes[key]
            if box.interval is None or not box.interval.contains(value):
                return None  # outside the analyzed region
        if self.always_reasons:
            return tuple(
                Finding(
                    Severity.ERROR,
                    "D002",
                    f"statically infeasible over the declared space: {reason}",
                    module=self.module.name,
                )
                for reason in self.always_reasons
            )
        findings: list[Finding] = []
        for key in sorted(norm):
            reason = self._masks[key].get(norm[key])
            if reason is not None:
                findings.append(
                    Finding(
                        Severity.ERROR,
                        "D002",
                        f"parameter {self._dims[key].name!r} = {norm[key]} "
                        f"lies in a statically infeasible subrange: {reason}",
                        module=self.module.name,
                    )
                )
        return tuple(findings) if findings else None

    def static_infeasible_mask(self, X: np.ndarray) -> np.ndarray:
        """Vectorized definite-infeasibility over encoded rows.

        Mirrors :meth:`repro.core.spaces.ParameterSpace.decode`'s clipping,
        so a row is masked exactly when its decoded binding would be
        rejected by :meth:`reject_findings`.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.int64))
        n = X.shape[0]
        if not self.applicable:
            return np.zeros(n, dtype=bool)
        self.run()
        assert self._masks is not None
        if self.always_reasons:
            return np.ones(n, dtype=bool)
        if self._luts is None:
            luts: list[np.ndarray] = []
            for dim in self.space:
                mask = self._masks.get(dim.name.lower(), {})
                lut = np.zeros(dim.cardinality(), dtype=bool)
                if mask:
                    for offset in range(dim.cardinality()):
                        if dim.decode(dim.low + offset) in mask:
                            lut[offset] = True
                luts.append(lut)
            self._luts = luts
        bad = np.zeros(n, dtype=bool)
        lows = np.array([d.low for d in self.space], dtype=np.int64)
        highs = np.array([d.high for d in self.space], dtype=np.int64)
        clipped = np.clip(X, lows, highs)
        for j, dim in enumerate(self.space):
            lut = self._luts[j]
            if lut.any():
                bad |= lut[clipped[:, j] - dim.low]
        return bad


# ---------------------------------------------------------------------------
# space pruning
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PruneReport:
    """What :func:`prune_space` changed, and why."""

    space: object  # repro.core.spaces.ParameterSpace
    dropped: tuple[str, ...] = ()
    tightened: tuple[tuple[str, int, int, int, int], ...] = ()
    notes: tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return bool(self.dropped or self.tightened)

    def render(self) -> str:
        lines: list[str] = []
        if not self.changed:
            lines.append("static pruning: space unchanged")
        for name in self.dropped:
            lines.append(
                f"static pruning: dropped dead dimension {name!r} "
                "(flows into no port range, generate condition, child "
                "generic, or body expression)"
            )
        for name, old_lo, old_hi, new_lo, new_hi in self.tightened:
            lines.append(
                f"static pruning: tightened {name} "
                f"[{old_lo}..{old_hi}] -> [{new_lo}..{new_hi}]"
            )
        lines.extend(f"static pruning: {note}" for note in self.notes)
        return "\n".join(lines)


def _rebuild_dim(dim, low: int, high: int):
    from repro.core.spaces import IntRange

    try:
        return type(dim)(dim.name, low, high)
    except TypeError:
        # BoolParam-style signatures take only a name; a tightened boolean
        # is just a (possibly single-valued) integer range.
        return IntRange(dim.name, low, high)


def prune_space(
    module: Module,
    space,
    sources: Sequence[tuple[str, str]] = (),
    scan: Optional[BodyScan] = None,
) -> PruneReport:
    """Statically tighten ``space``: drop dead dimensions, clip infeasible
    range ends.  Opt-in (the DSE CLI's ``--prune-space``): the returned
    space changes which points the GA can sample, so it is never applied
    implicitly.
    """
    if scan is None and sources:
        scan = scan_for(module.name, sources)
    analysis = StaticSpaceAnalysis(module, space, scan=scan)
    analysis.run()

    dead: set[str] = set()
    if scan is not None and not _has_architectural_model(module):
        graph = ParameterDependencyGraph(module=module, scan=scan)
        dead = {name.lower() for name in graph.dead_parameters()}

    all_dims = list(space)
    droppable = [d.name.lower() for d in all_dims if d.name.lower() in dead]
    if len(droppable) >= len(all_dims):
        # Keep at least one dimension — a space cannot be empty.
        droppable = droppable[: len(all_dims) - 1]
    dims: list = []
    dropped: list[str] = []
    tightened: list[tuple[str, int, int, int, int]] = []
    notes: list[str] = []
    for dim in all_dims:
        key = dim.name.lower()
        if key in droppable:
            dropped.append(dim.name)
            continue
        mask = analysis.mask_of(key) if analysis.applicable else {}
        low, high = dim.low, dim.high
        if mask and not analysis.always_reasons:
            while low < high and dim.decode(low) in mask:
                low += 1
            while high > low and dim.decode(high) in mask:
                high -= 1
            if low == high and dim.decode(low) in mask:
                # Everything infeasible: leave the dimension alone and let
                # D004 report it — an empty dimension cannot be built.
                notes.append(
                    f"dimension {dim.name!r} has no statically feasible "
                    "values; left unchanged (see D004)"
                )
                low, high = dim.low, dim.high
        if (low, high) != (dim.low, dim.high):
            tightened.append(
                (
                    dim.name,
                    dim.decode(dim.low),
                    dim.decode(dim.high),
                    dim.decode(low),
                    dim.decode(high),
                )
            )
            dims.append(_rebuild_dim(dim, low, high))
        else:
            dims.append(dim)
    if analysis.skipped_dims:
        notes.append(
            "dimensions too large to sweep per-value: "
            + ", ".join(analysis.skipped_dims)
        )
    if not dims:
        return PruneReport(space=space, notes=tuple(notes))
    from repro.core.spaces import ParameterSpace

    new_space = ParameterSpace(dims) if (dropped or tightened) else space
    return PruneReport(
        space=new_space,
        dropped=tuple(dropped),
        tightened=tuple(tightened),
        notes=tuple(notes),
    )


# ---------------------------------------------------------------------------
# the registered D rules
# ---------------------------------------------------------------------------


def _module(ctx: RuleContext) -> Module:
    assert ctx.module is not None, "dataflow rules need ctx.module"
    return ctx.module


def _scan_of(ctx: RuleContext) -> Optional[BodyScan]:
    if "dataflow.scan" not in ctx.cache:
        scan = None
        if ctx.sources:
            scan = scan_for(_module(ctx).name, ctx.sources)
        ctx.cache["dataflow.scan"] = scan
    return ctx.cache["dataflow.scan"]


def _analysis_of(ctx: RuleContext) -> Optional[StaticSpaceAnalysis]:
    if "dataflow.analysis" not in ctx.cache:
        analysis = None
        if ctx.space is not None:
            analysis = StaticSpaceAnalysis(
                _module(ctx), ctx.space, scan=_scan_of(ctx)
            )
        ctx.cache["dataflow.analysis"] = analysis
    return ctx.cache["dataflow.analysis"]


@rule(
    "D001",
    "dead-parameter",
    Severity.WARNING,
    Stage.DATAFLOW,
    "A free integer parameter flows into no port range, generate "
    "condition, child generic, or body expression — a DSE dimension over "
    "it only wastes exploration budget.",
)
def check_dead_parameter(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    if _has_architectural_model(module):
        return  # the model consumes parameters the RTL scan cannot see
    scan = _scan_of(ctx)
    if scan is None:
        return  # without a body scan, liveness cannot be decided
    graph = ParameterDependencyGraph(module=module, scan=scan)
    for name in graph.dead_parameters():
        param = module.parameter(name)
        yield Violation(
            f"parameter {name!r} is dead: it reaches no port range, "
            "generate condition, child generic, or body expression",
            module=module.name,
            line=param.line,
        )


@rule(
    "D002",
    "statically-infeasible-subrange",
    Severity.WARNING,
    Stage.DATAFLOW,
    "Interval analysis proves a contiguous subrange of a DSE dimension "
    "can never elaborate (null port range, $clog2 domain error, subtype "
    "violation); every point there would be rejected by the gate.",
)
def check_statically_infeasible_subrange(ctx: RuleContext) -> Iterator[Violation]:
    analysis = _analysis_of(ctx)
    if analysis is None or not analysis.applicable:
        return
    analysis.run()
    if analysis.always_reasons:
        return  # D004 reports the space-wide case
    empty = set(analysis.fully_infeasible_dims())
    for dim in ctx.space:
        if dim.name in empty:
            continue  # D004 reports fully-empty dimensions
        for lo, hi, reason in analysis.infeasible_runs(dim.name):
            span = str(lo) if lo == hi else f"{lo}..{hi}"
            yield Violation(
                f"dimension {dim.name!r} values {span} are statically "
                f"infeasible: {reason}",
                module=_module(ctx).name,
            )


@rule(
    "D003",
    "degenerate-generate-arm",
    Severity.WARNING,
    Stage.DATAFLOW,
    "A conditional-generate guard is false over the entire declared "
    "space: the guarded hardware can never be instantiated by any DSE "
    "point.",
)
def check_degenerate_generate_arm(ctx: RuleContext) -> Iterator[Violation]:
    scan = _scan_of(ctx)
    if scan is None or not scan.generate_conditions:
        return
    analysis = _analysis_of(ctx)
    if analysis is not None and analysis.applicable:
        env = analysis.box_env()
    else:
        env = {
            name: AbstractInt.exact(value)
            for name, value in _module(ctx).default_environment().items()
        }
    for cond in scan.generate_conditions:
        result = evaluate_abstract(cond.condition, env)
        if result.interval is not None and result.interval.definitely_zero():
            yield Violation(
                f"generate condition '{cond.condition.render()}' is false "
                "over the entire declared space; the guarded block is "
                "never instantiated",
                module=_module(ctx).name,
                line=cond.line,
            )


@rule(
    "D004",
    "statically-empty-dimension",
    Severity.ERROR,
    Stage.DATAFLOW,
    "Every value of a DSE dimension (or every point of the whole space) "
    "is statically infeasible — the exploration cannot produce a single "
    "feasible point.",
)
def check_statically_empty_dimension(ctx: RuleContext) -> Iterator[Violation]:
    analysis = _analysis_of(ctx)
    if analysis is None or not analysis.applicable:
        return
    analysis.run()
    if analysis.always_reasons:
        yield Violation(
            "every point of the declared space is statically infeasible: "
            + "; ".join(analysis.always_reasons),
            module=_module(ctx).name,
        )
        return
    for name in analysis.fully_infeasible_dims():
        mask = analysis.mask_of(name)
        reason = next(iter(mask.values()), "")
        yield Violation(
            f"dimension {name!r}: every declared value is statically "
            f"infeasible ({reason})",
            module=_module(ctx).name,
        )
