"""Netlist-stage rules (N001–N007): structure checks on the elaborated graph.

The block netlist is the richest artifact the flow produces before any
tool stage runs — these rules inspect it at a concrete parameter binding
(milliseconds of elaboration, zero simulated tool seconds).  Structural
breakage (N001–N003) is an error: such a netlist cannot produce a
meaningful tool run, which is why the DSE pre-flight gate rejects those
points outright.  Quality findings (N004–N007) warn about structure that
will implement poorly on the target device: fanout beyond a
device-derived threshold, combinational paths deeper than the timing
model can close at the target period, dead islands, and width/capacity
mismatches.

Device-derived thresholds come from ``ctx.device``/``ctx.target_period_ns``;
rules needing them stay silent when the context omits the device — a
threshold guessed without a device would make findings non-reproducible
across parts.
"""

from __future__ import annotations

import math
from typing import Iterator

from repro.analysis.findings import Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule
from repro.devices import Device, ResourceKind
from repro.netlist import Netlist

__all__ = ["achievable_lut_depth", "fanout_threshold"]

#: Fallback fanout threshold when thresholds cannot be device-derived.
_FANOUT_FLOOR = 256

#: Effective input bits a 6-input logic term can absorb (N007 capacity proxy).
_LOGIC_TERM_INPUTS = 6


def _netlist(ctx: RuleContext) -> Netlist:
    assert ctx.netlist is not None, "netlist rules need ctx.netlist"
    return ctx.netlist


def fanout_threshold(device: Device | None) -> int:
    """Bit-load a single block may drive before N004 flags it.

    Scaled off the device's LUT capacity: a block fanning out to more than
    ~1% of the fabric's LUTs is a routing hot-spot on that part (small
    parts tolerate proportionally less).  Floored so tiny parts don't flag
    ordinary buses.
    """
    if device is None:
        return _FANOUT_FLOOR
    return max(_FANOUT_FLOOR, device.capacity(ResourceKind.LUT) // 100)


def achievable_lut_depth(device: Device, target_period_ns: float) -> int:
    """LUT levels the device's timing model can close at ``target_period_ns``.

    Budget = period minus register overhead (setup + clk-to-Q); each level
    costs a LUT plus its local route, all scaled by the device speed
    factor — the same constants STA charges, so the threshold is exactly
    "deeper than this cannot meet timing even with zero global routing".
    """
    t = device.timing()
    overhead = (t.ff_clk_to_q_ns + t.ff_setup_ns) * device.speed_factor
    stage = (t.lut_delay_ns + 0.55 * t.net_delay_ns) * device.speed_factor
    budget = target_period_ns - overhead
    if budget <= 0 or stage <= 0:
        return 0
    return int(math.floor(budget / stage))


@rule(
    "N001",
    "combinational-loop",
    Severity.ERROR,
    Stage.NETLIST,
    "Combinational nets form a cycle; the netlist has no valid topological "
    "order and synthesis must reject it.  Every simple cycle is reported.",
)
def combinational_loop(ctx: RuleContext) -> Iterator[Violation]:
    netlist = _netlist(ctx)
    for loop in netlist.combinational_loops():
        chain = " -> ".join(loop) + f" -> {loop[0]}"
        yield Violation(
            message=f"combinational loop: {chain}",
            module=netlist.top,
        )


@rule(
    "N002",
    "undriven-block-input",
    Severity.ERROR,
    Stage.NETLIST,
    "A block consumes data but nothing drives it — no incoming net and no "
    "top-level input bits exist that could feed it.",
)
def undriven_block_input(ctx: RuleContext) -> Iterator[Violation]:
    netlist = _netlist(ctx)
    if netlist.ports.inputs > 0:
        # Block netlists carry no top-port connectivity; any source-less
        # block may legitimately be fed by the top-level inputs.  Only a
        # design with *zero* input bits leaves no possible driver.
        return
    driven = {n.dst for n in netlist.nets()}
    for block in sorted(netlist.blocks(), key=lambda b: b.name):
        consumes = (
            block.logic_terms + block.ff_bits + block.mem_bits
            + block.mul_ops + block.carry_bits
        ) > 0
        if consumes and block.name not in driven:
            yield Violation(
                message=(
                    f"block {block.name!r} consumes data but has no driver "
                    "(no incoming net, no top-level input bits)"
                ),
                module=netlist.top,
            )


@rule(
    "N003",
    "multiply-driven-net",
    Severity.ERROR,
    Stage.NETLIST,
    "Two nets drive the same (src, dst) connection; the later add_net "
    "silently overwrote the earlier one during elaboration.",
)
def multiply_driven_net(ctx: RuleContext) -> Iterator[Violation]:
    netlist = _netlist(ctx)
    seen: set[tuple[str, str]] = set()
    for src, dst in netlist.duplicate_connections:
        if (src, dst) in seen:
            continue
        seen.add((src, dst))
        yield Violation(
            message=(
                f"connection {src} -> {dst} is driven by multiple nets; "
                "the last add_net overwrote the earlier one(s)"
            ),
            module=netlist.top,
        )


@rule(
    "N004",
    "excessive-fanout",
    Severity.WARNING,
    Stage.NETLIST,
    "A block drives more bits than the device-derived fanout threshold; "
    "expect routing congestion and replication pressure on this part.",
)
def excessive_fanout(ctx: RuleContext) -> Iterator[Violation]:
    netlist = _netlist(ctx)
    threshold = fanout_threshold(ctx.device)
    loads: dict[str, int] = {b.name: 0 for b in netlist.blocks()}
    for net in netlist.nets():
        loads[net.src] += net.width
    for name in sorted(loads):
        load = loads[name]
        if load > threshold:
            yield Violation(
                message=(
                    f"block {name!r} drives {load} bits, above the fanout "
                    f"threshold {threshold} for this device"
                ),
                module=netlist.top,
            )


@rule(
    "N005",
    "unregistered-deep-path",
    Severity.WARNING,
    Stage.NETLIST,
    "A register-to-register path accumulates more LUT levels than the "
    "device timing model can close at the target period; it needs "
    "pipelining regardless of placement quality.",
)
def unregistered_deep_path(ctx: RuleContext) -> Iterator[Violation]:
    netlist = _netlist(ctx)
    if ctx.device is None or ctx.target_period_ns is None:
        return
    if netlist.combinational_loops():
        return  # arcs are undefined on a cyclic netlist; N001 owns this
    budget = achievable_lut_depth(ctx.device, ctx.target_period_ns)
    for arc in netlist.timing_arcs():
        launch = netlist.block(arc.blocks[0])
        levels = 0
        for i, name in enumerate(arc.blocks):
            if i == 0 and launch.registered_output and len(arc.blocks) > 1:
                continue  # registered launch contributes clk-to-Q only
            levels += netlist.block(name).levels
        if levels > budget:
            chain = " -> ".join(arc.blocks)
            yield Violation(
                message=(
                    f"path {chain} has {levels} LUT levels; at most {budget} "
                    f"can close {ctx.target_period_ns}ns on this device"
                ),
                module=netlist.top,
            )


@rule(
    "N006",
    "unreachable-block",
    Severity.WARNING,
    Stage.NETLIST,
    "A block sits in a connectivity island separate from the main graph; "
    "nothing it computes can reach the design's outputs.",
)
def unreachable_block(ctx: RuleContext) -> Iterator[Violation]:
    import networkx as nx

    netlist = _netlist(ctx)
    if len(netlist) <= 1:
        return
    undirected = nx.Graph()
    undirected.add_nodes_from(b.name for b in netlist.blocks())
    undirected.add_edges_from((n.src, n.dst) for n in netlist.nets())
    components = [sorted(c) for c in nx.connected_components(undirected)]
    if len(components) <= 1:
        return
    # The largest component (ties broken by smallest member name) is the
    # live design; everything else is a dead island.
    components.sort(key=lambda c: (-len(c), c[0]))
    for island in components[1:]:
        members = ", ".join(island)
        yield Violation(
            message=(
                f"block(s) {members} form an island disconnected from the "
                "main netlist; their outputs are unreachable"
            ),
            module=netlist.top,
        )


@rule(
    "N007",
    "net-width-mismatch",
    Severity.WARNING,
    Stage.NETLIST,
    "Incoming net bits exceed what the block's logic could plausibly "
    "consume; the elaboration model likely mis-sized a bus.",
)
def net_width_mismatch(ctx: RuleContext) -> Iterator[Violation]:
    netlist = _netlist(ctx)
    incoming: dict[str, int] = {b.name: 0 for b in netlist.blocks()}
    for net in netlist.nets():
        incoming[net.dst] += net.width
    for block in sorted(netlist.blocks(), key=lambda b: b.name):
        width_in = incoming[block.name]
        if width_in == 0:
            continue
        capacity = (
            _LOGIC_TERM_INPUTS * block.logic_terms
            + block.ff_bits
            + block.carry_bits
            + block.mem_width
            + 36 * block.mul_ops  # an 18x18 multiply consumes 36 input bits
        )
        if width_in > capacity:
            yield Violation(
                message=(
                    f"block {block.name!r} receives {width_in} net bits but "
                    f"its logic can consume at most {capacity}"
                ),
                module=netlist.top,
            )
