"""Boxing-stage rules (B001–B004): generated-wrapper consistency.

The boxing step (paper Listing 1) wraps the module under exploration in a
synthetic top whose only pin is the clock, specializing every generic at
the design point.  A wrapper defect — a port left unwired, a generic not
specialized, the ``DONT_TOUCH`` attribute missing, the clock not reaching
the box pin — silently corrupts every downstream measurement, so these
rules re-render the wrapper at the bound point and verify it structurally
before the tool ever runs.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.analysis.findings import Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule
from repro.hdl.ast import HdlLanguage, Module

__all__: list[str] = []  # rules register themselves; nothing to export


def _module(ctx: RuleContext) -> Module:
    assert ctx.module is not None, "boxing rules need ctx.module"
    return ctx.module


def _resolved_clock(ctx: RuleContext) -> Optional[str]:
    """The clock port boxing would select, or None when there is none."""
    module = _module(ctx)
    if ctx.clock_port is not None:
        try:
            return module.port(ctx.clock_port).name
        except KeyError:
            return None
    clocks = module.clock_ports()
    return clocks[0].name if clocks else None


def _get_box(ctx: RuleContext) -> Optional[object]:
    """Render the box artifact once per run; None when boxing cannot build.

    Build failures are not re-reported here: a missing clock is B001's
    finding and a bad override is P004's.
    """
    if "box" in ctx.cache:
        return ctx.cache["box"]
    from repro.boxing import build_box
    from repro.errors import ReproError

    box: Optional[object]
    try:
        box = build_box(
            _module(ctx), ctx.params or {}, clock_port=ctx.clock_port
        )
    except (ReproError, KeyError):
        box = None
    ctx.cache["box"] = box
    return box


def _wired(source: str, language: HdlLanguage, name: str, target: str) -> bool:
    """True when the box source connects ``name`` to ``target``."""
    lowered = source.lower()
    if language == HdlLanguage.VHDL:
        return f"{name.lower()} => {target.lower()}" in lowered
    return f".{name.lower()}({target.lower()})" in lowered


@rule(
    "B001",
    "no-boxable-clock",
    Severity.ERROR,
    Stage.BOXING,
    "Boxing cannot identify a clock port to constrain (none declared, or "
    "the named one does not exist).",
)
def check_no_boxable_clock(ctx: RuleContext) -> Iterator[Violation]:
    if not ctx.boxed:
        return
    module = _module(ctx)
    if _resolved_clock(ctx) is None:
        if ctx.clock_port is not None:
            yield Violation(
                f"named clock port {ctx.clock_port!r} is not a port of "
                f"module {module.name!r}",
                module=module.name,
            )
        else:
            yield Violation(
                f"module {module.name!r} has no identifiable clock port for "
                "boxing; pass clock_port explicitly",
                module=module.name,
            )


@rule(
    "B002",
    "box-coverage",
    Severity.ERROR,
    Stage.BOXING,
    "The generated wrapper must wire every port and specialize every free "
    "generic of the boxed module.",
)
def check_box_coverage(ctx: RuleContext) -> Iterator[Violation]:
    if not ctx.boxed:
        return
    module = _module(ctx)
    box = _get_box(ctx)
    if box is None:
        return
    source: str = box.source  # type: ignore[attr-defined]
    clock: str = box.clock_port  # type: ignore[attr-defined]
    lowered = source.lower()
    for port in module.ports:
        if port.name.lower() == clock.lower():
            continue
        if not _wired(source, module.language, port.name, f"s_{port.name}"):
            yield Violation(
                f"box wrapper does not wire port {port.name!r}",
                module=module.name,
                line=port.line,
            )
    for param in module.free_parameters():
        if module.language == HdlLanguage.VHDL:
            present = f"{param.name.lower()} =>" in lowered
        else:
            present = f".{param.name.lower()}(" in lowered
        if not present:
            yield Violation(
                f"box wrapper does not specialize generic {param.name!r}",
                module=module.name,
                line=param.line,
            )


@rule(
    "B003",
    "box-dont-touch",
    Severity.ERROR,
    Stage.BOXING,
    "The wrapper must mark the boxed instance DONT_TOUCH so synthesis "
    "cannot optimize the module under measurement away.",
)
def check_box_dont_touch(ctx: RuleContext) -> Iterator[Violation]:
    if not ctx.boxed:
        return
    module = _module(ctx)
    box = _get_box(ctx)
    if box is None:
        return
    source: str = box.source  # type: ignore[attr-defined]
    if "dont_touch" not in source.lower():
        yield Violation(
            "box wrapper lacks the DONT_TOUCH attribute on the boxed instance",
            module=module.name,
        )


@rule(
    "B004",
    "box-clock-unreachable",
    Severity.ERROR,
    Stage.BOXING,
    "The selected clock port must reach the wrapper's clock pin, or the "
    "generated timing constraint targets nothing.",
)
def check_box_clock_unreachable(ctx: RuleContext) -> Iterator[Violation]:
    if not ctx.boxed:
        return
    module = _module(ctx)
    box = _get_box(ctx)
    if box is None:
        return
    source: str = box.source  # type: ignore[attr-defined]
    clock: str = box.clock_port  # type: ignore[attr-defined]
    if not _wired(source, module.language, clock, "clk"):
        yield Violation(
            f"clock port {clock!r} is not connected to the box clock pin",
            module=module.name,
        )
