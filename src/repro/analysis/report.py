"""CI-grade lint output: text, JSON, and SARIF renderers + exit codes.

The SARIF output follows the 2.1.0 schema subset GitHub code scanning
consumes — ``runs[].tool.driver.rules[]`` carries the full rule catalog
and ``runs[].results[]`` one entry per finding — so ``dovado-repro lint
--format sarif`` can annotate pull requests directly.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import all_rules

__all__ = [
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
    "exit_code",
    "render_text",
    "render_json",
    "render_sarif",
]

EXIT_CLEAN = 0     # no findings (or warnings without --strict)
EXIT_WARNINGS = 1  # warning findings under --strict
EXIT_ERRORS = 2    # error findings

_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "dovado-repro-lint"


def exit_code(findings: Sequence[Finding], strict: bool = False) -> int:
    """CI exit code: 0 clean / 1 warnings under strict / 2 errors."""
    if any(f.severity == Severity.ERROR for f in findings):
        return EXIT_ERRORS
    if strict and any(f.severity == Severity.WARNING for f in findings):
        return EXIT_WARNINGS
    return EXIT_CLEAN


def render_text(findings: Sequence[Finding]) -> str:
    """One finding per line, compiler style, with a closing summary."""
    if not findings:
        return "clean: no findings\n"
    lines: list[str] = []
    for f in findings:
        where = f.module or "<design>"
        if f.line:
            where = f"{where}:{f.line}"
        lines.append(f"{where}: {f}")
    errors = sum(1 for f in findings if f.severity == Severity.ERROR)
    warnings = len(findings) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    errors = sum(1 for f in findings if f.severity == Severity.ERROR)
    warnings = sum(1 for f in findings if f.severity == Severity.WARNING)
    payload = {
        "tool": _TOOL_NAME,
        "findings": [f.as_dict() for f in findings],
        "summary": {
            "errors": errors,
            "warnings": warnings,
            "total": len(findings),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _sarif_level(severity: Severity) -> str:
    return "error" if severity == Severity.ERROR else "warning"


def render_sarif(findings: Sequence[Finding]) -> str:
    """SARIF 2.1.0 with the full rule catalog and one result per finding."""
    rules = [
        {
            "id": r.code,
            "name": r.name,
            "shortDescription": {"text": r.description},
            "defaultConfiguration": {"level": _sarif_level(r.severity)},
            "properties": {"stage": str(r.stage)},
        }
        for r in all_rules()
    ]
    rule_index = {r.code: i for i, r in enumerate(all_rules())}
    results = []
    for f in findings:
        result: dict[str, object] = {
            "ruleId": f.code,
            "level": _sarif_level(f.severity),
            "message": {"text": f.message},
            "partialFingerprints": {"dovadoRepro/v1": f.fingerprint()},
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        if f.module:
            # HDL findings carry a bare module name; the S-series
            # self-analysis rules carry a real relative file path.
            if "/" in f.module or f.module.endswith(".py"):
                uri = f.module
            else:
                uri = f"{f.module}.hdl"
            result["locations"] = [
                {
                    "logicalLocations": [
                        {"name": f.module, "kind": "module"}
                    ],
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        "region": {"startLine": max(1, f.line)},
                    },
                }
            ]
        results.append(result)
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": "https://github.com/DovadoFramework/Dovado",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
