"""Baseline suppression files: accept existing debt, block new findings.

A baseline is a JSON file mapping finding fingerprints (see
:meth:`repro.analysis.findings.Finding.fingerprint`) to a human-readable
label.  Loading one into a :class:`~repro.analysis.registry.RuleConfig`
silences exactly those findings — new findings (different code, module,
or message) still fail the build, which is what lets ``lint --strict``
turn on in a codebase that is not yet clean.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

__all__ = ["load_baseline", "write_baseline", "BASELINE_VERSION"]

BASELINE_VERSION = 1


def load_baseline(path: str | Path) -> frozenset[str]:
    """Read a baseline file; returns the suppressed fingerprints."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {payload.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    suppressions = payload.get("suppressions", {})
    if not isinstance(suppressions, dict):
        raise ValueError(f"{path}: 'suppressions' must be an object")
    return frozenset(suppressions)


def write_baseline(path: str | Path, findings: Sequence[Finding]) -> Path:
    """Write the baseline accepting every finding in ``findings``."""
    path = Path(path)
    suppressions = {
        f.fingerprint(): f"{f.code} {f.module}: {f.message}" for f in findings
    }
    payload = {
        "version": BASELINE_VERSION,
        "suppressions": dict(sorted(suppressions.items())),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path
