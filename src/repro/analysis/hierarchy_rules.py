"""Hierarchy-stage rules (H001–H002): cross-module structure.

Dovado starts "from an RTL hierarchy"; these rules consume the
instantiation graph of :mod:`repro.hdl.hierarchy` and flag structural
defects that make parts of the tree dead weight or outright
un-elaborable: instances of modules no provided source defines (their
outputs are undriven in the elaborated design) and recursive
instantiation.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule

__all__: list[str] = []


@rule(
    "H001",
    "unresolved-instance",
    Severity.WARNING,
    Stage.HIERARCHY,
    "A module is instantiated but defined by no provided source; its "
    "instance elaborates as a black box with undriven outputs.",
)
def check_unresolved_instance(ctx: RuleContext) -> Iterator[Violation]:
    from repro.hdl.hierarchy import extract_instances

    known = {name.lower() for name in ctx.known_modules}
    reported: set[str] = set()
    for source, language in ctx.sources:
        for inst in extract_instances(source, language):
            target = inst.target.lower()
            if target in known or target in reported:
                continue
            reported.add(target)
            yield Violation(
                f"instance {inst.label!r} in {inst.parent!r} targets "
                f"undefined module {inst.target!r} (undriven black box)",
                module=inst.parent,
            )


@rule(
    "H002",
    "recursive-instantiation",
    Severity.ERROR,
    Stage.HIERARCHY,
    "The instantiation graph contains a cycle; the design cannot elaborate.",
)
def check_recursive_instantiation(ctx: RuleContext) -> Iterator[Violation]:
    import networkx as nx

    from repro.hdl.hierarchy import Hierarchy, extract_instances

    hierarchy = Hierarchy()
    for name in ctx.known_modules:
        hierarchy.add_module(name)
    for source, language in ctx.sources:
        for inst in extract_instances(source, language):
            hierarchy.add(inst)
    try:
        cycle = nx.find_cycle(hierarchy.graph)
    except nx.NetworkXNoCycle:
        return
    chain = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[-1][1]}"
    yield Violation(f"recursive instantiation: {chain}", module=cycle[0][0])
