"""Elaboration-stage rules (P001–P005): checks at a *concrete* point.

The interface pass can only reason about expressions symbolically; these
rules bind an actual parameter assignment, constant-fold every width and
range expression through :mod:`repro.hdl.expr`, and catch the defects
that only manifest at specific DSE points — null/reversed port ranges,
widths that stop being evaluable (``$clog2(0)``, division by zero),
points outside the declared parameter space, overrides of unknown or
local parameters, and values violating VHDL integer subtypes.

The DSE pre-flight gate (:mod:`repro.analysis.gate`) runs exactly this
stage (plus boxing) before a point is priced as a tool run.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Optional

from repro.analysis.findings import Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule
from repro.errors import InvalidSpaceError
from repro.hdl import expr as E
from repro.hdl.ast import HdlLanguage, Module, Port

__all__ = ["resolve_point_environment"]


def resolve_point_environment(
    module: Module, params: Mapping[str, int] | None
) -> dict[str, int]:
    """Defaults + overrides, with localparams re-derived in declaration order.

    Unlike :func:`repro.synth.elaborate.resolve_environment` this never
    raises: overrides naming unknown or local parameters are skipped here
    and reported by rule ``P004`` instead.
    """
    env = module.default_environment()
    params = params or {}
    known = {p.name.lower(): p for p in module.parameters}
    for name, value in params.items():
        param = known.get(name.lower())
        if param is None or param.local:
            continue
        env[param.name] = int(value)
    for param in module.parameters:
        if param.local and param.default is not None:
            value = param.default_value(env)
            if value is not None:
                env[param.name] = value
    return env


def _module(ctx: RuleContext) -> Module:
    assert ctx.module is not None, "elaboration rules need ctx.module"
    return ctx.module


def _bound(port: Port, which: str, env: Mapping[str, int]) -> Optional[int]:
    node = port.ptype.high if which == "high" else port.ptype.low
    if node is None:
        return 0 if which == "low" else None
    return E.evaluate(node, env)


def _width_refs_of(port: Port) -> set[str]:
    refs: set[str] = set()
    if port.ptype.high is not None:
        refs |= E.free_names(port.ptype.high)
    if port.ptype.low is not None:
        refs |= E.free_names(port.ptype.low)
    return refs


def _point_repr(params: Mapping[str, int] | None) -> str:
    if not params:
        return "defaults"
    return ", ".join(f"{k}={v}" for k, v in sorted(params.items()))


@rule(
    "P001",
    "null-port-range",
    Severity.ERROR,
    Stage.ELABORATION,
    "A vector port elaborates to a null/reversed range (zero or negative "
    "width) at this parameter binding.",
)
def check_null_port_range(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    env = ctx.env or {}
    for port in module.ports:
        if not port.ptype.is_vector():
            continue
        try:
            high = _bound(port, "high", env)
            low = _bound(port, "low", env)
        except E.EvalError:
            continue  # P002 reports unevaluable expressions
        if high is None or low is None:
            continue
        # Both parsers normalize so the stored high is the wider end:
        # VHDL `l to r` stores high=r/low=l, so a null range — `7 downto 8`
        # or `0 to -1`, both width 0 in VHDL — is always high < low.
        if high >= low:
            continue
        if module.language != HdlLanguage.VHDL:
            # Verilog permits ascending index numbering (`[0:7]` is a
            # legal 8-bit vector); only a *parameter-dependent* range that
            # collapsed below its lsb is the degenerate-width bug class.
            if not (_width_refs_of(port)):
                continue
        if port.ptype.descending:
            rendered = f"{high} downto {low}"
        else:
            rendered = f"{low} to {high}"
        yield Violation(
            f"port {port.name!r} elaborates to a null range "
            f"({rendered}) at point ({_point_repr(ctx.params)})",
            module=module.name,
            line=port.line,
        )


@rule(
    "P002",
    "unevaluable-width",
    Severity.ERROR,
    Stage.ELABORATION,
    "A port range expression cannot be constant-folded at this parameter "
    "binding (e.g. $clog2(0), division by zero, unbound name).",
)
def check_unevaluable_width(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    env = ctx.env or {}
    for port in module.ports:
        if not port.ptype.is_vector():
            continue
        for which in ("high", "low"):
            try:
                _bound(port, which, env)
            except E.EvalError as exc:
                yield Violation(
                    f"port {port.name!r} {which} bound is not evaluable at "
                    f"point ({_point_repr(ctx.params)}): {exc}",
                    module=module.name,
                    line=port.line,
                )


@rule(
    "P003",
    "out-of-space-value",
    Severity.ERROR,
    Stage.ELABORATION,
    "A bound parameter value falls outside its declared DSE dimension "
    "(range bounds or power-of-two restriction).",
)
def check_out_of_space_value(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    if ctx.space is None or not ctx.params:
        return
    for name, value in sorted(ctx.params.items()):
        try:
            dim = ctx.space.dimension(name)
        except KeyError:
            continue  # not a DSE dimension; P004 covers unknown parameters
        try:
            encoded = dim.encode(int(value))
        except InvalidSpaceError as exc:
            yield Violation(
                f"parameter {name!r} = {value} violates its space "
                f"restriction: {exc}",
                module=module.name,
            )
            continue
        if not dim.low <= encoded <= dim.high:
            lo, hi = dim.decode(dim.low), dim.decode(dim.high)
            yield Violation(
                f"parameter {name!r} = {value} is outside the declared "
                f"space [{lo}, {hi}]",
                module=module.name,
            )


@rule(
    "P004",
    "unknown-or-local-override",
    Severity.ERROR,
    Stage.ELABORATION,
    "The point binds a name that is not a free parameter of the module "
    "(unknown, or a localparam/deferred constant).",
)
def check_unknown_or_local_override(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    if not ctx.params:
        return
    known = {p.name.lower(): p for p in module.parameters}
    for name in sorted(ctx.params):
        param = known.get(name.lower())
        if param is None:
            yield Violation(
                f"module {module.name!r} has no parameter {name!r}",
                module=module.name,
            )
        elif param.local:
            yield Violation(
                f"parameter {param.name!r} is local and cannot be overridden",
                module=module.name,
                line=param.line,
            )


@rule(
    "P005",
    "subtype-violation",
    Severity.ERROR,
    Stage.ELABORATION,
    "A bound value violates the parameter's integer subtype (negative "
    "natural, non-positive positive, non-boolean boolean/bit).",
)
def check_subtype_violation(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    if not ctx.params:
        return
    known = {p.name.lower(): p for p in module.parameters}
    for name, value in sorted(ctx.params.items()):
        param = known.get(name.lower())
        if param is None or param.local:
            continue
        value = int(value)
        ptype = param.ptype.lower()
        bad: str | None = None
        if ptype == "natural" and value < 0:
            bad = "natural generics must be >= 0"
        elif ptype == "positive" and value < 1:
            bad = "positive generics must be >= 1"
        elif param.is_boolean() and value not in (0, 1):
            bad = f"{param.ptype} parameters take only 0/1"
        if bad is not None:
            yield Violation(
                f"parameter {param.name!r} = {value}: {bad}",
                module=module.name,
                line=param.line,
            )
