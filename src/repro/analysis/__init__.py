"""Static analysis: the point-aware design rule checker (DRC).

The paper's parsing step "applies a first formal verification to the
design"; this package is that verification grown into a subsystem:

- :mod:`repro.analysis.findings` — finding/severity/result types;
- :mod:`repro.analysis.registry` — the rule registry (stable codes,
  default severities, per-run enable/disable and severity overrides);
- :mod:`repro.analysis.interface_rules` — point-independent interface
  rules (E001–E005, W001–W004), formerly ``repro.hdl.validate``;
- :mod:`repro.analysis.elaboration_rules` — elaboration-aware rules that
  bind a concrete parameter assignment and constant-fold every width
  (P001–P005);
- :mod:`repro.analysis.boxing_rules` — generated-wrapper consistency
  (B001–B004);
- :mod:`repro.analysis.hierarchy_rules` — instantiation-graph rules
  (H001–H002);
- :mod:`repro.analysis.concurrency` — the S-series concurrency &
  atomicity self-analysis of the service layer (S001–S006), run by
  ``lint --self`` over the framework's own Python;
- :mod:`repro.analysis.sanitize` — the runtime lock-order sanitizer that
  records the actual acquisition DAG during tests and cross-checks it
  against S003's static graph;
- :mod:`repro.analysis.checker` — the multi-pass orchestrator;
- :mod:`repro.analysis.gate` — the DSE pre-flight gate consulted by the
  evaluation engine before any point is priced as a tool run;
- :mod:`repro.analysis.baseline` — suppression files for existing debt;
- :mod:`repro.analysis.report` — text/JSON/SARIF renderers and CI exit
  codes for the ``dovado-repro lint`` subcommand.
"""

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.checker import DesignRuleChecker, boundary_points
from repro.analysis.concurrency import (
    SEEDED_LOCK_ORDER,
    LockGraph,
    LockNode,
    collect_py_sources,
    static_lock_graph,
)
from repro.analysis.findings import CheckResult, Finding, Severity
from repro.analysis.gate import PreflightGate, freeze_params
from repro.analysis.registry import (
    Rule,
    RuleConfig,
    RuleContext,
    Stage,
    Violation,
    all_rules,
    get_rule,
    rules_for_stage,
)
from repro.analysis.report import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_WARNINGS,
    exit_code,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "CheckResult",
    "DesignRuleChecker",
    "EXIT_CLEAN",
    "EXIT_ERRORS",
    "EXIT_WARNINGS",
    "Finding",
    "LockGraph",
    "LockNode",
    "PreflightGate",
    "Rule",
    "RuleConfig",
    "RuleContext",
    "SEEDED_LOCK_ORDER",
    "Severity",
    "Stage",
    "Violation",
    "all_rules",
    "boundary_points",
    "collect_py_sources",
    "exit_code",
    "static_lock_graph",
    "freeze_params",
    "get_rule",
    "load_baseline",
    "render_json",
    "render_sarif",
    "render_text",
    "rules_for_stage",
    "write_baseline",
]
