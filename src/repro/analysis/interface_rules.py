"""Interface-stage rules (E001–E005, W001–W004).

These are the point-independent checks that grew up in
``repro.hdl.validate`` — the paper's "first formal verification" applied
at parse time — now registered as design rules so they share the code
registry, severity overrides, and suppression machinery with the
elaboration-aware passes.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import Severity
from repro.analysis.registry import RuleContext, Stage, Violation, rule
from repro.hdl import expr as E
from repro.hdl.ast import Direction, Module, Port

__all__ = ["BUILTIN_NAMES"]

# Names legal in constant expressions without a parameter declaration.
BUILTIN_NAMES = frozenset({"true", "false"})


def _module(ctx: RuleContext) -> Module:
    assert ctx.module is not None, "interface rules need ctx.module"
    return ctx.module


def _width_refs(port: Port) -> set[str]:
    refs: set[str] = set()
    if port.ptype.high is not None:
        refs |= E.free_names(port.ptype.high)
    if port.ptype.low is not None:
        refs |= E.free_names(port.ptype.low)
    return refs


@rule(
    "E001",
    "duplicate-port",
    Severity.ERROR,
    Stage.INTERFACE,
    "Two ports share a name (case-insensitive, as VHDL requires).",
)
def check_duplicate_ports(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    seen: dict[str, str] = {}
    for port in module.ports:
        key = port.name.lower()
        if key in seen:
            yield Violation(
                f"duplicate port {port.name!r} (also declared as {seen[key]!r})",
                module=module.name,
                line=port.line,
            )
        seen[key] = port.name


@rule(
    "E002",
    "duplicate-parameter",
    Severity.ERROR,
    Stage.INTERFACE,
    "Two parameters/generics share a name (case-insensitive).",
)
def check_duplicate_parameters(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    seen: set[str] = set()
    for param in module.parameters:
        key = param.name.lower()
        if key in seen:
            yield Violation(
                f"duplicate parameter {param.name!r}",
                module=module.name,
                line=param.line,
            )
        seen.add(key)


@rule(
    "E003",
    "port-parameter-collision",
    Severity.ERROR,
    Stage.INTERFACE,
    "A port name collides with a parameter name (breaks the box's generic map).",
)
def check_port_parameter_collision(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    params = {p.name.lower() for p in module.parameters}
    for port in module.ports:
        if port.name.lower() in params:
            yield Violation(
                f"port {port.name!r} collides with a parameter name",
                module=module.name,
                line=port.line,
            )


@rule(
    "E004",
    "unknown-width-reference",
    Severity.ERROR,
    Stage.INTERFACE,
    "A port width/range expression references a name that is not a declared parameter.",
)
def check_unknown_width_reference(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    known = {p.name.lower() for p in module.parameters}
    for port in module.ports:
        for ref in sorted(_width_refs(port)):
            if ref.lower() not in known and ref.lower() not in BUILTIN_NAMES:
                yield Violation(
                    f"port {port.name!r} width references unknown name {ref!r}",
                    module=module.name,
                    line=port.line,
                )


@rule(
    "E005",
    "unknown-default-reference",
    Severity.ERROR,
    Stage.INTERFACE,
    "A parameter default expression references a name that is not a declared parameter.",
)
def check_unknown_default_reference(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    known = {p.name.lower() for p in module.parameters}
    for param in module.parameters:
        if param.default is None:
            continue
        for ref in sorted(E.free_names(param.default)):
            if ref.lower() not in known and ref.lower() not in BUILTIN_NAMES:
                yield Violation(
                    f"parameter {param.name!r} default references unknown "
                    f"name {ref!r}",
                    module=module.name,
                    line=param.line,
                )


@rule(
    "W001",
    "no-ports",
    Severity.WARNING,
    Stage.INTERFACE,
    "The module declares no ports; the tool will prune the whole design.",
)
def check_no_ports(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    if not module.ports:
        yield Violation(
            f"module {module.name!r} has no ports", module=module.name,
            line=module.line,
        )


@rule(
    "W002",
    "no-clock",
    Severity.WARNING,
    Stage.INTERFACE,
    "No identifiable clock port; timing analysis needs a constraint target.",
)
def check_no_clock(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    if module.ports and not module.clock_ports():
        yield Violation(
            f"module {module.name!r} has no identifiable clock port",
            module=module.name,
            line=module.line,
        )


@rule(
    "W003",
    "parameter-without-default",
    Severity.WARNING,
    Stage.INTERFACE,
    "A free parameter has no default value; exact evaluation must bind it.",
)
def check_parameter_without_default(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    for param in module.free_parameters():
        if param.default is None:
            yield Violation(
                f"parameter {param.name!r} has no default value",
                module=module.name,
                line=param.line,
            )


@rule(
    "W004",
    "no-input-ports",
    Severity.WARNING,
    Stage.INTERFACE,
    "No port carries input connectivity (inout ports count as inputs).",
)
def check_no_input_ports(ctx: RuleContext) -> Iterator[Violation]:
    module = _module(ctx)
    # `inout` ports carry input connectivity, so a module whose only
    # bidirectional pins face the outside world is not input-less.
    if module.ports and not any(
        p.direction in (Direction.IN, Direction.INOUT) for p in module.ports
    ):
        yield Violation(
            f"module {module.name!r} declares no input ports",
            module=module.name,
            line=module.line,
        )
