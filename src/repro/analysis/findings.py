"""Finding and result types shared by every analysis pass.

A :class:`Finding` is one diagnostic: a stable rule code, a severity, a
human-readable message, and (when known) the module and source line it
anchors to.  :class:`CheckResult` is an immutable bundle of findings with
the severity-partitioning helpers the gate, the CLI, and the reporters
all need.

These types predate the registry (``repro.hdl.validate`` grew them first)
and keep the original constructor shape — ``Finding(severity, code,
message)`` — so the historical lint API remains a drop-in.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Severity", "Finding", "CheckResult"]


class Severity(str, enum.Enum):
    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a design rule."""

    severity: Severity
    code: str
    message: str
    module: str = ""
    line: int = 0

    def __str__(self) -> str:
        return f"[{self.severity}:{self.code}] {self.message}"

    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (line numbers excluded,
        so unrelated edits above a finding do not invalidate the baseline)."""
        raw = f"{self.code}|{self.module}|{self.message}"
        return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]

    def as_dict(self) -> dict[str, Any]:
        return {
            "severity": str(self.severity),
            "code": self.code,
            "message": self.message,
            "module": self.module,
            "line": self.line,
            "fingerprint": self.fingerprint(),
        }


@dataclass(frozen=True)
class CheckResult:
    """The findings of one checker run, with severity partitions."""

    findings: tuple[Finding, ...] = field(default_factory=tuple)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self.findings)

    def errors(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == Severity.ERROR)

    def warnings(self) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity == Severity.WARNING)

    def ok(self) -> bool:
        """True when no error-severity finding is present."""
        return not self.errors()

    def codes(self) -> tuple[str, ...]:
        return tuple(f.code for f in self.findings)

    def merged(self, other: "CheckResult") -> "CheckResult":
        """Concatenate two results, dropping exact duplicates."""
        seen: set[tuple[str, str, str]] = set()
        out: list[Finding] = []
        for f in self.findings + other.findings:
            key = (f.code, f.module, f.message)
            if key in seen:
                continue
            seen.add(key)
            out.append(f)
        return CheckResult(tuple(out))
