"""The design-rule registry: stable codes, severities, per-rule config.

Every check the analyzer performs is a registered :class:`Rule` with

- a **stable code** (``E001``, ``P003``, …) that never changes meaning —
  CI baselines and suppression files key on it;
- a **kebab-case name** for humans and SARIF;
- a default :class:`~repro.analysis.findings.Severity` (overridable per
  run via :class:`RuleConfig`);
- the **stage** it runs in (interface / elaboration / boxing / hierarchy),
  which decides what context it receives.

Rule functions are tiny generators: they receive a :class:`RuleContext`
and yield :class:`Violation` drafts; the checker stamps code and severity
onto them.  Registering is declaration — importing a rules module is
enough to make its rules run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from repro.analysis.findings import Severity
from repro.devices import Device
from repro.hdl.ast import Module
from repro.netlist import Netlist

__all__ = [
    "Stage",
    "Violation",
    "RuleContext",
    "Rule",
    "RuleConfig",
    "rule",
    "all_rules",
    "get_rule",
    "rules_for_stage",
]


class Stage(str, enum.Enum):
    """When a rule runs, and therefore what context it can rely on."""

    INTERFACE = "interface"      # parsed module, no parameter binding
    ELABORATION = "elaboration"  # concrete point bound, widths foldable
    BOXING = "boxing"            # generated wrapper consistency
    HIERARCHY = "hierarchy"      # cross-module instantiation structure
    DATAFLOW = "dataflow"        # parameter flow + interval analysis over a space
    NETLIST = "netlist"          # elaborated block-netlist structure (N codes)
    CONCURRENCY = "concurrency"  # self-analysis of the service layer (S codes)

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Violation:
    """A rule's raw diagnostic, before code/severity stamping."""

    message: str
    module: str = ""
    line: int = 0


@dataclass
class RuleContext:
    """Everything a rule may inspect.  Fields are stage-dependent:

    - INTERFACE rules see ``module``;
    - ELABORATION rules additionally see ``params`` (the concrete point),
      ``env`` (the resolved parameter environment) and, when the caller
      declared one, the DSE ``space``;
    - BOXING rules see ``boxed``/``clock_port`` on top of the point;
    - HIERARCHY rules see ``sources`` and ``known_modules``;
    - NETLIST rules see ``netlist`` (the elaborated block graph at the
      bound point) plus ``device`` and ``target_period_ns`` for the
      device-derived thresholds (fanout capacity, achievable LUT depth);
    - CONCURRENCY rules see ``py_sources`` — ``(relative path, text)``
      pairs of the framework's *own* Python (the S-series self-analysis
      lints the service layer, not user HDL).

    ``cache`` is scratch space shared by the rules of one run (the boxing
    rules use it to render the wrapper once, not once per rule).
    """

    module: Optional[Module] = None
    params: Optional[Mapping[str, int]] = None
    env: Optional[Mapping[str, int]] = None
    space: Optional[Any] = None  # repro.core.spaces.ParameterSpace
    boxed: bool = True
    clock_port: Optional[str] = None
    sources: tuple[tuple[str, str], ...] = ()
    known_modules: tuple[str, ...] = ()
    netlist: Optional[Netlist] = None
    device: Optional[Device] = None
    target_period_ns: Optional[float] = None
    py_sources: tuple[tuple[str, str], ...] = ()
    cache: dict[str, Any] = field(default_factory=dict)


CheckFn = Callable[[RuleContext], Iterable[Violation]]


@dataclass(frozen=True)
class Rule:
    """One registered design rule."""

    code: str
    name: str
    severity: Severity
    stage: Stage
    description: str
    check: CheckFn


_RULES: dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    severity: Severity,
    stage: Stage,
    description: str,
) -> Callable[[CheckFn], CheckFn]:
    """Decorator registering ``fn`` as the implementation of a rule."""

    def wrap(fn: CheckFn) -> CheckFn:
        if code in _RULES:
            raise ValueError(f"duplicate rule code {code!r}")
        _RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            stage=stage,
            description=description,
            check=fn,
        )
        return fn

    return wrap


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in stable (code-sorted) order."""
    return tuple(_RULES[code] for code in sorted(_RULES))


def get_rule(code: str) -> Rule:
    try:
        return _RULES[code]
    except KeyError:
        known = ", ".join(sorted(_RULES)) or "<none>"
        raise KeyError(f"unknown rule code {code!r}; registered: {known}") from None


def rules_for_stage(stage: Stage) -> tuple[Rule, ...]:
    return tuple(r for r in all_rules() if r.stage == stage)


@dataclass(frozen=True)
class RuleConfig:
    """Per-run rule configuration: disables, severity overrides, baseline.

    ``disabled`` holds rule codes that are skipped entirely;
    ``severity_overrides`` remaps a code's severity (e.g. promote ``W002``
    to an error in CI); ``baseline`` holds finding fingerprints accepted
    as pre-existing debt (see :mod:`repro.analysis.baseline`).
    """

    disabled: frozenset[str] = frozenset()
    severity_overrides: Mapping[str, Severity] = field(default_factory=dict)
    baseline: frozenset[str] = frozenset()

    def enabled(self, code: str) -> bool:
        return code not in self.disabled

    def severity_of(self, rule_: Rule) -> Severity:
        return self.severity_overrides.get(rule_.code, rule_.severity)
