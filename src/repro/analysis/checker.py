"""The multi-pass design rule checker.

:class:`DesignRuleChecker` owns a :class:`~repro.analysis.registry.
RuleConfig` and exposes one entry point per pass:

- :meth:`check_interface` — point-independent interface rules (E/W codes);
- :meth:`check_point` — elaboration + boxing rules under one concrete
  parameter binding (P/B codes); the DSE pre-flight gate runs exactly
  this;
- :meth:`check_sources` — hierarchy rules over a source set (H codes);
- :meth:`check_design` — the CLI's full sweep: interface + hierarchy +
  point checks at the default binding and at the boundary points of the
  declared space.

Importing this module pulls in every rules module, so the registry is
always fully populated once a checker exists.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

# Importing the rules modules registers their rules (intentional side effect).
from repro.analysis import (  # noqa: F401
    boxing_rules,
    concurrency,
    dataflow_rules,
    elaboration_rules,
    hierarchy_rules,
    interface_rules,
    netlist_rules,
)
from repro.analysis.elaboration_rules import resolve_point_environment
from repro.analysis.findings import CheckResult, Finding
from repro.analysis.registry import (
    RuleConfig,
    RuleContext,
    Stage,
    rules_for_stage,
)
from repro.devices import Device
from repro.hdl.ast import Module

__all__ = ["DesignRuleChecker", "boundary_points"]


def boundary_points(
    space: Any, defaults: Mapping[str, int] | None = None
) -> list[dict[str, int]]:
    """Per-dimension boundary bindings of a parameter space.

    Produces, for every dimension, its decoded low and high bound with all
    other dimensions at their space midpoints (or the caller's defaults) —
    the cheapest point set that still exercises each range endpoint, where
    width arithmetic typically degenerates first.
    """
    dims = list(space)
    base: dict[str, int] = {}
    for d in dims:
        base[d.name] = int(d.decode((d.low + d.high) // 2))
    if defaults:
        for name, value in defaults.items():
            for d in dims:
                if d.name.lower() == name.lower():
                    base[d.name] = int(value)
    points: list[dict[str, int]] = [dict(base)]
    for d in dims:
        for encoded in (d.low, d.high):
            point = dict(base)
            point[d.name] = int(d.decode(encoded))
            if point not in points:
                points.append(point)
    return points


class DesignRuleChecker:
    """Run registered design rules under one configuration."""

    def __init__(self, config: RuleConfig | None = None) -> None:
        self.config = config or RuleConfig()

    # ------------------------------------------------------------------

    def _run_stage(self, stage: Stage, ctx: RuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for rule_ in rules_for_stage(stage):
            if not self.config.enabled(rule_.code):
                continue
            severity = self.config.severity_of(rule_)
            for violation in rule_.check(ctx):
                findings.append(
                    Finding(
                        severity=severity,
                        code=rule_.code,
                        message=violation.message,
                        module=violation.module,
                        line=violation.line,
                    )
                )
        return findings

    def _suppress(self, findings: Iterable[Finding]) -> CheckResult:
        kept = tuple(
            f for f in findings if f.fingerprint() not in self.config.baseline
        )
        return CheckResult(kept)

    # ------------------------------------------------------------------

    def check_interface(self, module: Module) -> CheckResult:
        """Point-independent interface rules (the historical lint pass)."""
        ctx = RuleContext(module=module)
        return self._suppress(self._run_stage(Stage.INTERFACE, ctx))

    def check_point(
        self,
        module: Module,
        params: Mapping[str, int] | None,
        space: Any = None,
        boxed: bool = True,
        clock_port: str | None = None,
    ) -> CheckResult:
        """Elaboration + boxing rules under one concrete binding."""
        ctx = RuleContext(
            module=module,
            params=dict(params or {}),
            env=resolve_point_environment(module, params),
            space=space,
            boxed=boxed,
            clock_port=clock_port,
        )
        findings = self._run_stage(Stage.ELABORATION, ctx)
        findings += self._run_stage(Stage.BOXING, ctx)
        return self._suppress(findings)

    def check_netlist(
        self,
        module: Module,
        params: Mapping[str, int] | None = None,
        device: Device | None = None,
        target_period_ns: float | None = None,
    ) -> CheckResult:
        """Netlist-structure rules (N codes) at one concrete binding.

        Elaborates the point with the combinational-loop check *disabled*
        so rule N001 can enumerate every cycle as a finding instead of the
        elaborator dying on the first; other elaboration failures (bad
        parameters, empty netlists) propagate to the caller — the
        source-level passes own those diagnostics.
        """
        from repro.synth.elaborate import elaborate

        netlist = elaborate(module, params, check_loops=False)
        ctx = RuleContext(
            module=module,
            params=dict(params or {}),
            netlist=netlist,
            device=device,
            target_period_ns=target_period_ns,
        )
        return self._suppress(self._run_stage(Stage.NETLIST, ctx))

    def check_dataflow(
        self,
        module: Module,
        space: Any = None,
        sources: Sequence[tuple[str, str]] = (),
    ) -> CheckResult:
        """Dataflow rules: dependency-graph + interval analysis (D codes)."""
        ctx = RuleContext(module=module, space=space, sources=tuple(sources))
        return self._suppress(self._run_stage(Stage.DATAFLOW, ctx))

    def check_sources(
        self,
        sources: Sequence[tuple[str, str]],
        known_modules: Sequence[str] = (),
    ) -> CheckResult:
        """Hierarchy rules over ``(text, language)`` source pairs."""
        ctx = RuleContext(
            sources=tuple(sources), known_modules=tuple(known_modules)
        )
        return self._suppress(self._run_stage(Stage.HIERARCHY, ctx))

    def check_python(
        self, py_sources: Sequence[tuple[str, str]]
    ) -> CheckResult:
        """Concurrency/atomicity self-analysis (S codes) over Python
        sources given as ``(relative path, text)`` pairs — the ``lint
        --self`` pass over the framework's own service layer."""
        ctx = RuleContext(py_sources=tuple(py_sources))
        return self._suppress(self._run_stage(Stage.CONCURRENCY, ctx))

    def check_design(
        self,
        module: Module,
        space: Any = None,
        sources: Sequence[tuple[str, str]] = (),
        known_modules: Sequence[str] = (),
        points: Optional[Sequence[Mapping[str, int]]] = None,
        boxed: bool = True,
        clock_port: str | None = None,
    ) -> CheckResult:
        """The full static sweep the ``lint`` CLI runs.

        ``points`` overrides the elaboration set; otherwise the default
        binding is checked, plus the boundary points of ``space`` when a
        space is declared.
        """
        result = self.check_interface(module)
        result = result.merged(
            self.check_dataflow(module, space=space, sources=tuple(sources))
        )
        if sources:
            result = result.merged(
                self.check_sources(sources, known_modules=known_modules)
            )
        if points is None:
            point_list: list[Mapping[str, int]] = [{}]
            if space is not None:
                point_list = list(boundary_points(space))
        else:
            point_list = list(points)
        for point in point_list:
            result = result.merged(
                self.check_point(
                    module,
                    point,
                    space=space,
                    boxed=boxed,
                    clock_port=clock_port,
                )
            )
        return result
