"""The speculative promotion gate of the multi-fidelity flow ladder.

The DSE evaluates most points only to learn they are dominated; their
full-route numbers never matter beyond that verdict.  The gate makes that
verdict *before* paying for route+STA: each candidate first runs a cheap
low-fidelity probe, a learned model predicts the full-route metrics from
the probe's signals, and the expensive tail is skipped when even an
*optimistic* read of the prediction is dominated by the current
full-fidelity front.

Three guarantees keep the speculation honest:

- **Residual learning** — the model (the repo's Nadaraya-Watson stack)
  predicts the *gap* between probe and full-route metrics, not the
  metrics themselves, so the probe's measured signal always anchors the
  prediction and the model only has to learn the systematic optimism of
  the lower rung.
- **Conformal-style error band** — prediction errors are recorded
  out-of-sample on every promoted point (predict first, then learn), and
  the per-metric ``(1 - risk)`` quantile of those absolute errors widens
  the prediction before the dominance test.  A point is skipped only
  when its *optimistic corner* (prediction minus band, in minimized
  space) is still dominated.
- **Mandatory-promotion trickle** — every ``trickle_every``-th would-be
  skip is promoted anyway, so the calibration set keeps growing even
  when the gate becomes confident, and drift cannot starve it.

Everything is deterministic: no RNG, no clock — identical call sequences
reproduce identical decisions.
"""

from __future__ import annotations

import numpy as np

from repro.estimation.nadaraya_watson import NadarayaWatson
from repro.observe import current_telemetry

__all__ = ["GateDecision", "PromotionGate"]

_MIN_BANDWIDTH = 1e-6


class GateDecision:
    """Outcome of one :meth:`PromotionGate.assess` call."""

    __slots__ = ("promote", "reason", "predicted_full_min")

    def __init__(
        self, promote: bool, reason: str, predicted_full_min: np.ndarray | None = None
    ) -> None:
        self.promote = promote
        self.reason = reason
        self.predicted_full_min = predicted_full_min

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        verb = "promote" if self.promote else "skip"
        return f"GateDecision({verb}: {self.reason})"


def _dominates(row: np.ndarray, other: np.ndarray) -> bool:
    """Pareto dominance in minimized space (row at least as good, somewhere better)."""
    return bool(np.all(row <= other) and np.any(row < other))


class PromotionGate:
    """Decide per candidate whether the full-route tail is worth paying for.

    All metric vectors are exchanged in *minimized* space (``signs *
    raw``, the convention of :class:`repro.moo.problem.IntegerProblem`),
    so dominance is a plain component-wise comparison regardless of each
    metric's sense.

    ``risk`` is the per-metric miss probability the error band targets:
    at 0.05, the band covers 95% of the calibration errors, so a skipped
    point's true full-route value escapes its optimistic corner on at
    most ~5% of metric reads.  ``min_calibration`` promoted points are
    required before any skip; ``trickle_every`` bounds how many
    consecutive skips may pass between forced promotions.
    """

    def __init__(
        self,
        signs: np.ndarray,
        risk: float = 0.05,
        min_calibration: int = 5,
        trickle_every: int = 8,
    ) -> None:
        if not 0.0 < risk < 1.0:
            raise ValueError(f"risk must be in (0, 1), got {risk}")
        if min_calibration < 1:
            raise ValueError(f"min_calibration must be >= 1, got {min_calibration}")
        if trickle_every < 2:
            raise ValueError(f"trickle_every must be >= 2, got {trickle_every}")
        self.signs = np.asarray(signs, dtype=float).ravel()
        self.risk = float(risk)
        self.min_calibration = int(min_calibration)
        self.trickle_every = int(trickle_every)
        self._X: list[np.ndarray] = []
        self._residuals: list[np.ndarray] = []
        self._errors: list[np.ndarray] = []
        self._front: np.ndarray | None = None
        self._model: NadarayaWatson | None = None
        self.promoted = 0
        self.skipped = 0
        self.trickled = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _count(name: str) -> None:
        tel = current_telemetry()
        if tel is not None:
            tel.counters.inc(name)

    def _band(self) -> np.ndarray | None:
        """Per-metric (1 - risk) quantile of the out-of-sample |error|."""
        if len(self._errors) < self.min_calibration:
            return None
        errors = np.vstack(self._errors)
        return np.quantile(errors, 1.0 - self.risk, axis=0)

    def _refit(self) -> None:
        X = np.vstack(self._X)
        if len(self._X) == 1:
            bandwidth = 1.0
        else:
            # Half the median pairwise distance: wide enough to average
            # neighbours, narrow enough to track local residual structure.
            diffs = X[:, None, :] - X[None, :, :]
            dists = np.sqrt((diffs * diffs).sum(axis=2))
            upper = dists[np.triu_indices(len(self._X), k=1)]
            bandwidth = max(float(np.median(upper)) * 0.5, _MIN_BANDWIDTH)
        self._model = NadarayaWatson(bandwidth=bandwidth).fit(
            X, np.vstack(self._residuals)
        )

    @staticmethod
    def _augment(x: np.ndarray, priors: np.ndarray | None) -> np.ndarray:
        """Concatenate static-estimate prior features onto the input row.

        Priors (zero-cost analytical bounds from
        :mod:`repro.netlist.static_estimate`) extend the residual model's
        input space: two points with similar parameters but different
        structural bounds stop being forced to share a residual estimate,
        which is what lets the gate calibrate in fewer promotions.  The
        caller must pass priors consistently (always or never) — the NW
        model requires a fixed input dimension.
        """
        row = np.asarray(x, dtype=float).ravel()
        if priors is None:
            return row
        return np.concatenate([row, np.asarray(priors, dtype=float).ravel()])

    def predict_full_min(
        self,
        x: np.ndarray,
        low_min: np.ndarray,
        priors: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Predicted full-route metrics (minimized space), or None pre-fit."""
        if self._model is None:
            return None
        residual = self._model.predict(self._augment(x, priors))
        return np.asarray(low_min, dtype=float) + residual

    # ------------------------------------------------------------------

    def assess(
        self,
        x: np.ndarray,
        low_min: np.ndarray,
        priors: np.ndarray | None = None,
    ) -> GateDecision:
        """Promote-or-skip verdict for a probed candidate.

        ``low_min`` is the probe's metric vector in minimized space.  The
        caller must feed every *promoted* point's full-route outcome back
        through :meth:`observe` — calibration and the front depend on it.
        ``priors`` optionally appends static-estimate features to the
        model input (see :meth:`_augment`).
        """
        prediction = self.predict_full_min(x, low_min, priors)
        if len(self._X) < self.min_calibration or prediction is None:
            self.promoted += 1
            self._count("decision.fidelity_promote")
            return GateDecision(True, "calibration", prediction)
        band = self._band()
        if band is None:
            self.promoted += 1
            self._count("decision.fidelity_promote")
            return GateDecision(True, "uncertain", prediction)
        if self._front is None or not len(self._front):
            self.promoted += 1
            self._count("decision.fidelity_promote")
            return GateDecision(True, "no-front", prediction)
        optimistic = prediction - band
        dominated = any(_dominates(row, optimistic) for row in self._front)
        if not dominated:
            self.promoted += 1
            self._count("decision.fidelity_promote")
            return GateDecision(True, "frontier", prediction)
        # Dominated even optimistically — a skip, unless the trickle is due.
        if (self.skipped + self.trickled + 1) % self.trickle_every == 0:
            self.trickled += 1
            self.promoted += 1
            self._count("decision.fidelity_promote")
            return GateDecision(True, "trickle", prediction)
        self.skipped += 1
        self._count("decision.fidelity_skip")
        return GateDecision(False, "dominated", prediction)

    def observe(
        self,
        x: np.ndarray,
        low_min: np.ndarray,
        full_min: np.ndarray,
        priors: np.ndarray | None = None,
    ) -> None:
        """Learn from a promoted point's (probe, full-route) outcome pair.

        The prediction error is recorded *before* the point joins the
        dataset, so the band calibrates on genuinely out-of-sample
        errors.  ``priors`` must mirror what :meth:`assess` received for
        this point.
        """
        x = self._augment(x, priors)
        low_min = np.asarray(low_min, dtype=float).ravel()
        full_min = np.asarray(full_min, dtype=float).ravel()
        prediction = self.predict_full_min(x, low_min)
        if prediction is not None:
            self._errors.append(np.abs(prediction - full_min))
        self._X.append(x)
        self._residuals.append(full_min - low_min)
        self._refit()
        if self._front is None:
            self._front = full_min[None, :]
        else:
            candidates = np.vstack([self._front, full_min[None, :]])
            keep = [
                i
                for i in range(len(candidates))
                if not any(
                    _dominates(candidates[j], candidates[i])
                    for j in range(len(candidates))
                    if j != i
                )
            ]
            self._front = candidates[keep]

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        band = self._band()
        return {
            "promoted": self.promoted,
            "skipped": self.skipped,
            "trickled": self.trickled,
            "calibration_points": len(self._errors),
            "dataset_size": len(self._X),
            "front_size": 0 if self._front is None else int(len(self._front)),
            "band": None if band is None else [float(b) for b in band],
            "risk": self.risk,
        }
