"""Incrementally maintained pairwise squared-distance matrix.

The control model consults the dataset's distance structure on *every*
insert — the LOO bandwidth scan needs the full pairwise matrix, and the
adaptive threshold Γ needs each point's nearest-neighbour distance.
Rebuilding those from scratch per insert costs O(n²·d) (and the LOO scan
used to rebuild per bandwidth candidate, ×17).  :class:`DistanceCache`
keeps both structures current with a single O(n·d) row append per insert:

- the squared-distance matrix grows by one row/column (the distances from
  the new point to every stored point);
- the per-point nearest-neighbour squared distances are a running minimum,
  which appends can only lower — so one ``np.minimum`` per insert keeps
  them exact.

Buffers grow by doubling, so appends are amortized O(n·d) with no
per-insert reallocation.  Row values are computed with
:func:`~repro.estimation.kernels.squared_distances`, the same elementwise
formula the from-scratch rebuild uses.
"""

from __future__ import annotations

import numpy as np

from repro.estimation.kernels import squared_distances

__all__ = ["DistanceCache"]


class DistanceCache:
    """Pairwise squared distances over a growing point set."""

    def __init__(self, n_var: int, initial_capacity: int = 64) -> None:
        if n_var < 1:
            raise ValueError("n_var must be >= 1")
        self.n_var = n_var
        self._n = 0
        self._cap = max(4, int(initial_capacity))
        self._X = np.empty((self._cap, n_var), dtype=float)
        self._d2 = np.zeros((self._cap, self._cap), dtype=float)
        self._nn2 = np.empty(self._cap, dtype=float)

    def __len__(self) -> int:
        return self._n

    # ------------------------------------------------------------------

    def _grow(self) -> None:
        cap = self._cap * 2
        X = np.empty((cap, self.n_var), dtype=float)
        d2 = np.zeros((cap, cap), dtype=float)
        nn2 = np.empty(cap, dtype=float)
        n = self._n
        X[:n] = self._X[:n]
        d2[:n, :n] = self._d2[:n, :n]
        nn2[:n] = self._nn2[:n]
        self._X, self._d2, self._nn2, self._cap = X, d2, nn2, cap

    def append(self, x: np.ndarray) -> None:
        """Add one point: O(n·d) distance row + running-minimum update."""
        x = np.asarray(x, dtype=float).ravel()
        if x.size != self.n_var:
            raise ValueError(f"point has {x.size} vars, cache expects {self.n_var}")
        if self._n == self._cap:
            self._grow()
        n = self._n
        self._X[n] = x
        if n:
            row = squared_distances(x, self._X[:n])
            self._d2[:n, n] = row
            self._d2[n, :n] = row
            np.minimum(self._nn2[:n], row, out=self._nn2[:n])
            self._nn2[n] = float(row.min())
        else:
            self._nn2[0] = np.inf
        self._n = n + 1

    # ------------------------------------------------------------------

    def points(self) -> np.ndarray:
        """View of the stored points (do not mutate; rows are append-only)."""
        return self._X[: self._n]

    def matrix(self) -> np.ndarray:
        """View of the n×n squared-distance matrix (zero diagonal).

        Callers that need to mask entries (e.g. set the diagonal to ∞)
        must copy first — the view is the live cache.
        """
        return self._d2[: self._n, : self._n]

    def nearest_sq_dists(self) -> np.ndarray:
        """Per-point squared distance to its nearest *other* point (copy).

        A singleton set has no pairs: its entry is ``inf``.
        """
        return self._nn2[: self._n].copy()
