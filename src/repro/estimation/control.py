"""The control model: Vivado, cache, or estimator? (paper Fig. 2 logic).

Per new design point the DSE proposes, :meth:`ControlModel.decide` applies
the paper's three cases in order:

1. **CACHED** — the point is already in the dataset: the tool is "called"
   but answers from its result cache at zero cost;
2. **ESTIMATE** — the point's similarity Φ to its nearest dataset
   neighbour is within the adaptive threshold Γ: the NWM answers;
3. **EVALUATE** — otherwise: run the real tool, insert the (point, value)
   pair, retrain + revalidate (LOO bandwidth re-selection) and update Γ.

The model keeps decision statistics so the ablation benches can report the
tool-call savings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import BandwidthSelectionError
from repro.estimation.cross_validation import loo_bandwidth
from repro.estimation.dataset import Dataset
from repro.estimation.nadaraya_watson import NadarayaWatson
from repro.estimation.similarity import adaptive_threshold, similarity_phi

__all__ = ["Decision", "ControlModel"]


class Decision(str, enum.Enum):
    CACHED = "cached"
    ESTIMATE = "estimate"
    EVALUATE = "evaluate"

    def __str__(self) -> str:
        return self.value


@dataclass
class ControlModel:
    """State: the dataset, the fitted NWM, Γ, and decision counters."""

    dataset: Dataset
    model: NadarayaWatson = field(default_factory=lambda: NadarayaWatson(1.0))
    threshold: float = 0.0
    min_points_to_estimate: int = 4
    last_loo_mse: float = float("nan")
    counts: dict[Decision, int] = field(
        default_factory=lambda: {d: 0 for d in Decision}
    )

    def decide(self, x: np.ndarray) -> Decision:
        """Apply the three-case policy (does not mutate state)."""
        if self.dataset.contains(x):
            return Decision.CACHED
        if (
            len(self.dataset) >= self.min_points_to_estimate
            and self.threshold > 0.0
            and self.model.fitted
        ):
            phi = similarity_phi(x, self.dataset, n=1)
            if phi <= self.threshold:
                return Decision.ESTIMATE
        return Decision.EVALUATE

    def note(self, decision: Decision) -> None:
        self.counts[decision] += 1

    # ------------------------------------------------------------------

    def estimate(self, x: np.ndarray) -> np.ndarray:
        """NWM prediction for ``x`` (caller must have decided ESTIMATE)."""
        return self.model.predict(np.asarray(x, dtype=float))

    def cached(self, x: np.ndarray) -> np.ndarray:
        value = self.dataset.lookup(x)
        if value is None:
            raise KeyError("cached() called for a point not in the dataset")
        return value

    def record(self, x: np.ndarray, y: np.ndarray) -> None:
        """Insert a fresh tool result; retrain, revalidate, update Γ."""
        inserted = self.dataset.add(x, y)
        if not inserted:
            return
        self.refit()

    def refit(self) -> None:
        """Retrain the NWM on the whole dataset + re-select the bandwidth."""
        if len(self.dataset) < 2:
            return
        X = self.dataset.X()
        Y = self.dataset.Y()
        # Fit first so normalization is available for the LOO scoring.
        self.model.fit(X, Y)
        Y_norm = self.model.normalize(Y)
        try:
            h, mse = loo_bandwidth(X, Y_norm)
        except BandwidthSelectionError:
            # Degenerate dataset (e.g. identical points): keep the previous
            # bandwidth, skip the validation update.
            self.threshold = adaptive_threshold(self.dataset)
            return
        self.model.bandwidth = h
        self.last_loo_mse = mse
        self.threshold = adaptive_threshold(self.dataset)

    # ------------------------------------------------------------------

    def pretrain(self, X: np.ndarray, Y: np.ndarray) -> None:
        """Bulk-load the synthetic dataset (the paper's M initial runs)."""
        X = np.atleast_2d(X)
        Y = np.atleast_2d(Y)
        for x, y in zip(X, Y):
            self.dataset.add(x, y)
        self.refit()

    def stats(self) -> dict[str, int | float]:
        return {
            "cached": self.counts[Decision.CACHED],
            "estimated": self.counts[Decision.ESTIMATE],
            "evaluated": self.counts[Decision.EVALUATE],
            "dataset_size": len(self.dataset),
            "threshold": self.threshold,
            "bandwidth": self.model.bandwidth,
            "loo_mse": self.last_loo_mse,
        }
