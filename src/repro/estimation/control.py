"""The control model: Vivado, cache, or estimator? (paper Fig. 2 logic).

Per new design point the DSE proposes, :meth:`ControlModel.decide` applies
the paper's three cases in order:

1. **CACHED** — the point is already in the dataset: the tool is "called"
   but answers from its result cache at zero cost;
2. **ESTIMATE** — the point's similarity Φ to its nearest dataset
   neighbour is within the adaptive threshold Γ: the NWM answers;
3. **EVALUATE** — otherwise: run the real tool, insert the (point, value)
   pair, retrain + revalidate (LOO bandwidth re-selection) and update Γ.

Retraining is split into a cheap and an expensive half.  Every insert
refreshes the NWM's data/normalization (O(n)) and the adaptive threshold Γ
(O(n) via the dataset's distance cache), so estimates always see the full
dataset.  The expensive half — the 17-candidate LOO bandwidth scan — runs
under a configurable :class:`RefitPolicy`: every ``k`` inserts, and/or
whenever Γ has drifted beyond a relative tolerance since the last scan.
The default (``every=1``) reproduces the original per-insert full refit
exactly; :meth:`ControlModel.refit` forces an exact refit on demand, and
:meth:`ControlModel.pretrain` always ends with one.

The model keeps decision statistics so the ablation benches can report the
tool-call savings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import BandwidthSelectionError
from repro.estimation.cross_validation import loo_bandwidth
from repro.estimation.dataset import Dataset
from repro.estimation.nadaraya_watson import NadarayaWatson
from repro.estimation.similarity import adaptive_threshold, similarity_phi
from repro.observe import current_telemetry, span as observe_span

__all__ = ["Decision", "RefitPolicy", "ControlModel"]


class Decision(str, enum.Enum):
    CACHED = "cached"
    ESTIMATE = "estimate"
    EVALUATE = "evaluate"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class RefitPolicy:
    """When to re-run the LOO bandwidth scan after an insert.

    ``every=1`` (default) re-selects on every insert — the original exact
    behaviour.  ``every=k`` re-selects on every k-th insert; setting
    ``gamma_drift`` additionally forces a scan whenever Γ has moved by more
    than that relative fraction since the last scan (so the model tracks
    regime changes between periodic scans).  ``every=0`` disables periodic
    scans entirely (drift/on-demand only).
    """

    every: int = 1
    gamma_drift: float | None = None

    def __post_init__(self) -> None:
        if self.every < 0:
            raise ValueError("every must be >= 0")
        if self.gamma_drift is not None and self.gamma_drift <= 0:
            raise ValueError("gamma_drift must be positive when set")


@dataclass
class ControlModel:
    """State: the dataset, the fitted NWM, Γ, and decision counters."""

    dataset: Dataset
    model: NadarayaWatson = field(default_factory=lambda: NadarayaWatson(1.0))
    threshold: float = 0.0
    min_points_to_estimate: int = 4
    last_loo_mse: float = float("nan")
    refit_policy: RefitPolicy = field(default_factory=RefitPolicy)
    refits: int = 0
    counts: dict[Decision, int] = field(
        default_factory=lambda: {d: 0 for d in Decision}
    )
    _inserts_since_scan: int = field(default=0, repr=False)
    _gamma_at_scan: float = field(default=0.0, repr=False)

    def decide(self, x: np.ndarray) -> Decision:
        """Apply the three-case policy (does not mutate state)."""
        if self.dataset.contains(x):
            return Decision.CACHED
        if (
            len(self.dataset) >= self.min_points_to_estimate
            and self.threshold > 0.0
            and self.model.fitted
        ):
            phi = similarity_phi(x, self.dataset, n=1)
            if phi <= self.threshold:
                return Decision.ESTIMATE
        return Decision.EVALUATE

    def note(self, decision: Decision) -> None:
        self.counts[decision] += 1
        tel = current_telemetry()
        if tel is not None:
            tel.counters.inc(f"decision.{decision.value}")

    # ------------------------------------------------------------------

    def estimate(self, x: np.ndarray) -> np.ndarray:
        """NWM prediction for ``x`` (caller must have decided ESTIMATE)."""
        return self.model.predict(np.asarray(x, dtype=float))

    def cached(self, x: np.ndarray) -> np.ndarray:
        value = self.dataset.lookup(x)
        if value is None:
            raise KeyError("cached() called for a point not in the dataset")
        return value

    def record(self, x: np.ndarray, y: np.ndarray) -> None:
        """Insert a fresh tool result; retrain per the refit policy."""
        inserted = self.dataset.add(x, y)
        if not inserted:
            return
        if len(self.dataset) < 2:
            return
        # Cheap half: refresh data/normalization and Γ on every insert.
        self.model.fit(self.dataset.X(), self.dataset.Y())
        self.threshold = adaptive_threshold(self.dataset)
        self._inserts_since_scan += 1
        if self._should_scan():
            self._select_bandwidth()

    def refit(self) -> None:
        """Exact refit on demand: retrain + re-select the bandwidth."""
        if len(self.dataset) < 2:
            return
        self.model.fit(self.dataset.X(), self.dataset.Y())
        self.threshold = adaptive_threshold(self.dataset)
        self._select_bandwidth()

    # ------------------------------------------------------------------

    def _should_scan(self) -> bool:
        policy = self.refit_policy
        if policy.every and self._inserts_since_scan >= policy.every:
            return True
        if policy.gamma_drift is not None and self._gamma_at_scan > 0.0:
            drift = abs(self.threshold - self._gamma_at_scan) / self._gamma_at_scan
            if drift > policy.gamma_drift:
                return True
        return False

    def _select_bandwidth(self) -> None:
        """The expensive half: the LOO bandwidth scan over the cached d2."""
        with observe_span("estimation.refit"):
            X = self.dataset.points_view()
            Y_norm = self.model.normalize(self.dataset.Y())
            try:
                h, mse = loo_bandwidth(X, Y_norm, d2=self.dataset.distance_matrix())
            except BandwidthSelectionError:
                # Degenerate dataset (e.g. identical points): keep the
                # previous bandwidth; the counter stays up so the next
                # insert retries.
                return
            self.model.bandwidth = h
            self.last_loo_mse = mse
            self.refits += 1
            self._inserts_since_scan = 0
            self._gamma_at_scan = self.threshold

    # ------------------------------------------------------------------

    def pretrain(self, X: np.ndarray, Y: np.ndarray) -> None:
        """Bulk-load the synthetic dataset (the paper's M initial runs)."""
        X = np.atleast_2d(X)
        Y = np.atleast_2d(Y)
        for x, y in zip(X, Y):
            self.dataset.add(x, y)
        self.refit()

    def stats(self) -> dict[str, int | float]:
        return {
            "cached": self.counts[Decision.CACHED],
            "estimated": self.counts[Decision.ESTIMATE],
            "evaluated": self.counts[Decision.EVALUATE],
            "dataset_size": len(self.dataset),
            "threshold": self.threshold,
            "bandwidth": self.model.bandwidth,
            "loo_mse": self.last_loo_mse,
            "refits": self.refits,
        }
