"""Kernel functions for the Nadaraya-Watson estimator.

Eq. 3 of the paper: a Gaussian kernel with bandwidth ``h``::

    K_h(x, x_i) = (1 / sqrt(2π)) · exp(−(x − x_i)² / (2h²))

For vector-valued design points, ``(x − x_i)²`` is the squared Euclidean
distance — the same quantity the similarity measure (Eq. 4) is built on,
up to the 1/m normalization.  Shapiai et al. (the paper's reference [28])
showed the Gaussian kernel dominates alternatives for small-sample
weighted kernel regression, which is why it is the only kernel Dovado
ships; we include it plus the Epanechnikov kernel for the ablation tests.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gaussian_kernel", "epanechnikov_kernel", "squared_distances"]

_INV_SQRT_2PI = 1.0 / np.sqrt(2.0 * np.pi)


def squared_distances(x: np.ndarray, X: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from ``x`` (m,) to each row of ``X`` (n, m)."""
    x = np.asarray(x, dtype=float)
    X = np.atleast_2d(np.asarray(X, dtype=float))
    diff = X - x[None, :]
    return np.einsum("ij,ij->i", diff, diff)


def gaussian_kernel(sq_dist: np.ndarray, h: float) -> np.ndarray:
    """Eq. 3 applied to precomputed squared distances."""
    if h <= 0:
        raise ValueError(f"bandwidth must be positive, got {h}")
    return _INV_SQRT_2PI * np.exp(-sq_dist / (2.0 * h * h))


def epanechnikov_kernel(sq_dist: np.ndarray, h: float) -> np.ndarray:
    """Epanechnikov kernel (compact support), for kernel-choice ablations."""
    if h <= 0:
        raise ValueError(f"bandwidth must be positive, got {h}")
    u2 = sq_dist / (h * h)
    return np.where(u2 < 1.0, 0.75 * (1.0 - u2), 0.0)
