"""The Nadaraya-Watson estimator (Eq. 2).

A weighted average of dataset values with Gaussian-kernel weights::

    ŷ = Σ K_h(x, x_i)·y_i / Σ K_h(x, x_i)

Multi-output: the same weights apply to every metric column.  Metric
columns are min-max normalized at fit time so (a) the bandwidth search is
scale-free across metrics and (b) reported MSE matches the paper's ~1e-2
magnitude; predictions are denormalized on the way out.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyDatasetError
from repro.estimation.kernels import gaussian_kernel, squared_distances

__all__ = ["NadarayaWatson"]


class NadarayaWatson:
    """Fit/predict wrapper around Eq. 2 with a fixed bandwidth."""

    def __init__(self, bandwidth: float = 1.0) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        self.bandwidth = float(bandwidth)
        self._X: np.ndarray | None = None
        self._Y_norm: np.ndarray | None = None
        self._y_min: np.ndarray | None = None
        self._y_span: np.ndarray | None = None

    @property
    def fitted(self) -> bool:
        return self._X is not None

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "NadarayaWatson":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if X.shape[0] != Y.shape[0]:
            raise ValueError("X and Y row counts differ")
        if X.shape[0] == 0:
            raise EmptyDatasetError("cannot fit on an empty dataset")
        self._X = X
        self._y_min = Y.min(axis=0)
        span = Y.max(axis=0) - self._y_min
        self._y_span = np.where(span > 0, span, 1.0)
        self._Y_norm = (Y - self._y_min) / self._y_span
        return self

    # ------------------------------------------------------------------

    def predict_normalized(self, x: np.ndarray) -> np.ndarray:
        """Prediction in normalized metric space (used for MSE reporting)."""
        if self._X is None or self._Y_norm is None:
            raise EmptyDatasetError("model is not fitted")
        w = gaussian_kernel(squared_distances(x, self._X), self.bandwidth)
        total = w.sum()
        if total <= 0 or not np.isfinite(total):
            # All weights underflowed: fall back to the nearest neighbour,
            # the h→0 limit of the estimator.
            idx = int(np.argmin(squared_distances(x, self._X)))
            return self._Y_norm[idx].copy()
        return (w @ self._Y_norm) / total

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Prediction in raw metric units."""
        y_norm = self.predict_normalized(x)
        assert self._y_min is not None and self._y_span is not None
        return y_norm * self._y_span + self._y_min

    def predict_many(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.vstack([self.predict(x) for x in X])

    # ------------------------------------------------------------------

    def normalize(self, Y: np.ndarray) -> np.ndarray:
        """Map raw metric rows into the fitted normalization (for MSE)."""
        if self._y_min is None or self._y_span is None:
            raise EmptyDatasetError("model is not fitted")
        return (np.atleast_2d(np.asarray(Y, dtype=float)) - self._y_min) / self._y_span
