"""The synthetic dataset backing the approximation model.

Rows are (design point, metric vector) pairs from real tool runs.  The
dataset offers the queries the control model needs — exact-membership
lookup, nearest-neighbour distances (Eq. 4), pairwise nearest distances
for the adaptive threshold — and grows online as the DSE inserts new tool
results.

Distance queries are served by a :class:`~repro.estimation.
distance_cache.DistanceCache` that the dataset keeps current on insert, so
the adaptive threshold costs O(n) per query and the LOO bandwidth scan
reuses one shared pairwise matrix instead of rebuilding O(n²·d) tensors.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyDatasetError
from repro.estimation.distance_cache import DistanceCache

__all__ = ["Dataset"]


class Dataset:
    """Growable (X, Y) store with distance queries.

    ``metric_names`` fixes the meaning/order of Y columns.  Decision points
    are stored as float for distance math but compared exactly via integer
    keys (DSE points are integral).
    """

    def __init__(self, n_var: int, metric_names: tuple[str, ...]) -> None:
        if n_var < 1:
            raise ValueError("n_var must be >= 1")
        if not metric_names:
            raise ValueError("at least one metric is required")
        self.n_var = n_var
        self.metric_names = tuple(metric_names)
        self._cache = DistanceCache(n_var)
        self._Y: list[np.ndarray] = []
        self._keys: dict[tuple[int, ...], int] = {}

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._cache)

    @property
    def n_metrics(self) -> int:
        return len(self.metric_names)

    @staticmethod
    def _key(x: np.ndarray) -> tuple[int, ...]:
        return tuple(int(round(v)) for v in np.asarray(x).ravel())

    def contains(self, x: np.ndarray) -> bool:
        return self._key(x) in self._keys

    def lookup(self, x: np.ndarray) -> np.ndarray | None:
        """Exact-match metric vector, or None."""
        idx = self._keys.get(self._key(x))
        return None if idx is None else self._Y[idx].copy()

    def add(self, x: np.ndarray, y: np.ndarray) -> bool:
        """Insert a pair; returns False (no-op) when the point is present."""
        x = np.asarray(x, dtype=float).ravel()
        y = np.asarray(y, dtype=float).ravel()
        if x.size != self.n_var:
            raise ValueError(f"point has {x.size} vars, dataset expects {self.n_var}")
        if y.size != self.n_metrics:
            raise ValueError(
                f"value has {y.size} metrics, dataset expects {self.n_metrics}"
            )
        key = self._key(x)
        if key in self._keys:
            return False
        self._keys[key] = len(self._cache)
        self._cache.append(x)
        self._Y.append(y)
        return True

    # ------------------------------------------------------------------

    def X(self) -> np.ndarray:
        if not len(self._cache):
            raise EmptyDatasetError("dataset has no points")
        return self._cache.points().copy()

    def Y(self) -> np.ndarray:
        if not self._Y:
            raise EmptyDatasetError("dataset has no points")
        return np.vstack(self._Y)

    def points_view(self) -> np.ndarray:
        """Read-only-by-convention view of X (no copy; rows append-only)."""
        if not len(self._cache):
            raise EmptyDatasetError("dataset has no points")
        return self._cache.points()

    def distance_matrix(self) -> np.ndarray:
        """The cached n×n pairwise squared-distance matrix (live view)."""
        return self._cache.matrix()

    def nearest_distance(self, x: np.ndarray, n: int = 1) -> float:
        """Euclidean distance to the n-th nearest stored point (1-based)."""
        if not len(self._cache):
            raise EmptyDatasetError("dataset has no points")
        if n < 1 or n > len(self._cache):
            raise ValueError(f"n must be in [1, {len(self._cache)}]")
        X = self._cache.points()
        d2 = ((X - np.asarray(x, dtype=float)[None, :]) ** 2).sum(axis=1)
        return float(np.sqrt(np.partition(d2, n - 1)[n - 1]))

    def pairwise_nearest_distances(self) -> np.ndarray:
        """For each stored point, distance to its nearest *other* point.

        Empty for datasets with fewer than two points (no pairs exist).
        Served in O(n) from the distance cache's running minima.
        """
        if len(self._cache) < 2:
            return np.zeros(0)
        return np.sqrt(self._cache.nearest_sq_dists())
