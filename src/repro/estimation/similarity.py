"""Similarity measure (Eq. 4) and the adaptive threshold Γ.

Eq. 4 (from Shokri et al.)::

    Φ_n = sqrt( Σ_j (x_j − z_j^n)² / m )

i.e. the RMS per-dimension distance between the new point x and its n-th
nearest training point z^n (m = decision-space dimensionality).  The
threshold Γ adapts to the run: it is the dataset-average of nearest
distances, recomputed after every insertion::

    Γ = Σ_i Φ^i / L

Both queries lean on the dataset's distance cache: Φ is one O(n·d) scan
against the cached point matrix, and Γ reads the incrementally maintained
nearest-neighbour distances in O(n) instead of rebuilding the O(n²·d)
pairwise tensor per insertion.
"""

from __future__ import annotations

import numpy as np

from repro.estimation.dataset import Dataset

__all__ = ["similarity_phi", "adaptive_threshold"]


def similarity_phi(x: np.ndarray, dataset: Dataset, n: int = 1) -> float:
    """Eq. 4: RMS distance from ``x`` to its n-th nearest dataset point."""
    euclid = dataset.nearest_distance(x, n=n)
    m = dataset.n_var
    return euclid / np.sqrt(m)


def adaptive_threshold(dataset: Dataset) -> float:
    """Γ: mean nearest-neighbour Φ across the dataset.

    Returns 0 for datasets with fewer than two points (the control model
    then never estimates, which is the safe degenerate behaviour).
    """
    nearest = dataset.pairwise_nearest_distances()
    if nearest.size == 0:
        return 0.0
    phis = nearest / np.sqrt(dataset.n_var)
    return float(phis.mean())
