"""Leave-one-out cross-validation for bandwidth selection.

The paper: "We adopt Leave-One-Out cross-validation given the small size
of the dataset and the NWM cheap computational cost", with bandwidth as
the single free parameter.  LOO for kernel regression vectorizes cleanly:
with the full pairwise kernel matrix W (diagonal zeroed), every held-out
prediction is one row-normalized matrix product — so scanning a bandwidth
grid costs one (n×n) matrix build per candidate.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BandwidthSelectionError
from repro.estimation.kernels import gaussian_kernel

__all__ = ["loo_mse", "loo_bandwidth", "default_bandwidth_grid"]


def _pairwise_sq_dists(X: np.ndarray) -> np.ndarray:
    X = np.atleast_2d(np.asarray(X, dtype=float))
    diff = X[:, None, :] - X[None, :, :]
    return np.einsum("ijk,ijk->ij", diff, diff)


def loo_mse(X: np.ndarray, Y_norm: np.ndarray, h: float) -> float:
    """Mean LOO squared error (averaged over points and metric columns).

    ``Y_norm`` should already be normalized so columns are comparable.
    Held-out points whose every kernel weight underflows fall back to the
    nearest neighbour (matching the estimator's own fallback).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    Y = np.atleast_2d(np.asarray(Y_norm, dtype=float))
    n = X.shape[0]
    if n < 2:
        raise BandwidthSelectionError("LOO needs at least two points")
    d2 = _pairwise_sq_dists(X)
    W = gaussian_kernel(d2, h)
    np.fill_diagonal(W, 0.0)
    totals = W.sum(axis=1)
    preds = np.empty_like(Y)
    ok = totals > 1e-300
    if ok.any():
        preds[ok] = (W[ok] @ Y) / totals[ok, None]
    if (~ok).any():
        d2_masked = d2.copy()
        np.fill_diagonal(d2_masked, np.inf)
        nearest = np.argmin(d2_masked[~ok], axis=1)
        preds[~ok] = Y[nearest]
    return float(((preds - Y) ** 2).mean())


def default_bandwidth_grid(X: np.ndarray) -> np.ndarray:
    """Geometric bandwidth grid spanning the dataset's distance scales."""
    d2 = _pairwise_sq_dists(X)
    np.fill_diagonal(d2, np.inf)
    nearest = np.sqrt(d2.min(axis=1))
    finite = nearest[np.isfinite(nearest)]
    lo = max(1e-3, float(np.min(finite)) * 0.25) if finite.size else 1e-3
    hi = max(lo * 4, float(np.sqrt(d2[np.isfinite(d2)].max())) if np.isfinite(d2).any() else 1.0)
    return np.geomspace(lo, hi, num=17)


def loo_bandwidth(
    X: np.ndarray,
    Y_norm: np.ndarray,
    grid: np.ndarray | None = None,
) -> tuple[float, float]:
    """Select the bandwidth minimizing LOO MSE.

    Returns ``(bandwidth, mse)``.  Raises
    :class:`~repro.errors.BandwidthSelectionError` when no candidate yields
    a finite score.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if grid is None:
        grid = default_bandwidth_grid(X)
    best_h: float | None = None
    best_mse = np.inf
    for h in np.asarray(grid, dtype=float):
        if h <= 0:
            continue
        mse = loo_mse(X, Y_norm, float(h))
        if np.isfinite(mse) and mse < best_mse:
            best_mse = mse
            best_h = float(h)
    if best_h is None:
        raise BandwidthSelectionError("no bandwidth in the grid produced a finite MSE")
    return best_h, best_mse
