"""Leave-one-out cross-validation for bandwidth selection.

The paper: "We adopt Leave-One-Out cross-validation given the small size
of the dataset and the NWM cheap computational cost", with bandwidth as
the single free parameter.  LOO for kernel regression vectorizes cleanly:
with the full pairwise kernel matrix W (diagonal zeroed), every held-out
prediction is one row-normalized matrix product — so scanning a bandwidth
grid costs one (n×n) matrix build per candidate.

The squared-distance matrix is the shared input of the whole scan: every
public function accepts a precomputed ``d2`` (e.g. the dataset's
:class:`~repro.estimation.distance_cache.DistanceCache` matrix), and
:func:`loo_bandwidth` computes it once for the entire grid rather than
once per candidate.  The from-scratch builder uses the Gram-matrix
identity ``‖xᵢ−xⱼ‖² = ‖xᵢ‖² + ‖xⱼ‖² − 2·xᵢ·xⱼ``, which needs only an
(n×n) product instead of the O(n²·d) broadcast difference tensor.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BandwidthSelectionError
from repro.estimation.kernels import gaussian_kernel

__all__ = ["loo_mse", "loo_bandwidth", "default_bandwidth_grid"]


def _pairwise_sq_dists(X: np.ndarray) -> np.ndarray:
    X = np.atleast_2d(np.asarray(X, dtype=float))
    sq = np.einsum("ij,ij->i", X, X)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    # The Gram form can go slightly negative from cancellation; distances
    # are non-negative by definition and the diagonal is exactly zero.
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def loo_mse(
    X: np.ndarray,
    Y_norm: np.ndarray,
    h: float,
    d2: np.ndarray | None = None,
) -> float:
    """Mean LOO squared error (averaged over points and metric columns).

    ``Y_norm`` should already be normalized so columns are comparable.
    ``d2`` optionally supplies the pairwise squared-distance matrix (it is
    not mutated).  Held-out points whose every kernel weight underflows
    fall back to the nearest neighbour (matching the estimator's own
    fallback).
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    Y = np.atleast_2d(np.asarray(Y_norm, dtype=float))
    n = X.shape[0]
    if n < 2:
        raise BandwidthSelectionError("LOO needs at least two points")
    if d2 is None:
        d2 = _pairwise_sq_dists(X)
    W = gaussian_kernel(d2, h)
    np.fill_diagonal(W, 0.0)
    totals = W.sum(axis=1)
    preds = np.empty_like(Y)
    ok = totals > 1e-300
    if ok.any():
        preds[ok] = (W[ok] @ Y) / totals[ok, None]
    if (~ok).any():
        d2_masked = d2.copy()
        np.fill_diagonal(d2_masked, np.inf)
        nearest = np.argmin(d2_masked[~ok], axis=1)
        preds[~ok] = Y[nearest]
    return float(((preds - Y) ** 2).mean())


def default_bandwidth_grid(
    X: np.ndarray, d2: np.ndarray | None = None
) -> np.ndarray:
    """Geometric bandwidth grid spanning the dataset's distance scales."""
    if d2 is None:
        d2 = _pairwise_sq_dists(X)
    masked = d2.copy()
    np.fill_diagonal(masked, np.inf)
    nearest = np.sqrt(masked.min(axis=1))
    finite = nearest[np.isfinite(nearest)]
    lo = max(1e-3, float(np.min(finite)) * 0.25) if finite.size else 1e-3
    hi = max(
        lo * 4,
        float(np.sqrt(masked[np.isfinite(masked)].max()))
        if np.isfinite(masked).any()
        else 1.0,
    )
    return np.geomspace(lo, hi, num=17)


def loo_bandwidth(
    X: np.ndarray,
    Y_norm: np.ndarray,
    grid: np.ndarray | None = None,
    d2: np.ndarray | None = None,
) -> tuple[float, float]:
    """Select the bandwidth minimizing LOO MSE.

    Returns ``(bandwidth, mse)``.  The pairwise squared-distance matrix is
    computed once (or taken from ``d2``) and shared across the whole grid
    scan.  Raises :class:`~repro.errors.BandwidthSelectionError` when no
    candidate yields a finite score.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if d2 is None:
        d2 = _pairwise_sq_dists(X)
    if grid is None:
        grid = default_bandwidth_grid(X, d2=d2)
    best_h: float | None = None
    best_mse = np.inf
    for h in np.asarray(grid, dtype=float):
        if h <= 0:
            continue
        mse = loo_mse(X, Y_norm, float(h), d2=d2)
        if np.isfinite(mse) and mse < best_mse:
            best_mse = mse
            best_h = float(h)
    if best_h is None:
        raise BandwidthSelectionError("no bandwidth in the grid produced a finite MSE")
    return best_h, best_mse
