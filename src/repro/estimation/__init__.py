"""Fitness-function approximation (paper Section III-C).

Dovado avoids calling Vivado for every NSGA-II fitness evaluation by
training a non-parametric Nadaraya-Watson regressor (Gaussian kernel,
Eq. 2–3) on a synthetic dataset of M randomly sampled tool runs, validated
with leave-one-out cross-validation (bandwidth is the only free
parameter).  A control model inspired by Shokri et al. decides per point:

1. point already in the dataset → cached tool result;
2. point within the adaptive similarity threshold Γ of the dataset
   (Eq. 4's distance to the nearest training point) → NWM estimate;
3. otherwise → real tool run, dataset insertion, retrain/revalidate, and Γ
   update (mean nearest-neighbour distance over the dataset).
"""

from repro.estimation.kernels import gaussian_kernel
from repro.estimation.dataset import Dataset
from repro.estimation.distance_cache import DistanceCache
from repro.estimation.nadaraya_watson import NadarayaWatson
from repro.estimation.cross_validation import loo_bandwidth, loo_mse
from repro.estimation.similarity import similarity_phi, adaptive_threshold
from repro.estimation.control import ControlModel, Decision, RefitPolicy
from repro.estimation.fidelity_gate import GateDecision, PromotionGate

__all__ = [
    "gaussian_kernel",
    "Dataset",
    "DistanceCache",
    "NadarayaWatson",
    "loo_bandwidth",
    "loo_mse",
    "similarity_phi",
    "adaptive_threshold",
    "ControlModel",
    "Decision",
    "RefitPolicy",
    "GateDecision",
    "PromotionGate",
]
