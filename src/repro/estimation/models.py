"""Alternative estimators (paper future work).

"We plan to explore different statistical models, either parametric or
non-parametric, to amortize the expensive synthetic dataset generation."
This module provides three comparators for the Nadaraya-Watson default,
all behind one small protocol (``fit``/``predict``/``loo_mse``):

- :class:`KnnRegressor` — k-nearest-neighbour average (non-parametric,
  the h→0 family NWM generalizes);
- :class:`RbfInterpolator` — thin-plate RBF interpolation via SciPy
  (non-parametric, exact at training points);
- :class:`RidgeRegressor` — polynomial ridge regression (parametric, the
  "higher variance" family the paper observes overfitting on small data).

:func:`compare_estimators` scores every candidate by leave-one-out MSE on
a dataset, the same validation the control model runs, and
:func:`select_estimator` returns the winner — the "run-time choice among
various algorithms based on information from synthetic dataset generation"
the conclusions envision, applied to the estimator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np
from scipy.interpolate import RBFInterpolator
from scipy.spatial import cKDTree

from repro.errors import EmptyDatasetError, EstimationError
from repro.estimation.nadaraya_watson import NadarayaWatson
from repro.estimation.cross_validation import loo_bandwidth

__all__ = [
    "Estimator",
    "KnnRegressor",
    "RbfInterpolator",
    "RidgeRegressor",
    "NwmEstimator",
    "compare_estimators",
    "select_estimator",
]


class Estimator(Protocol):
    """Minimal estimator protocol the selection harness consumes."""

    name: str

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "Estimator": ...
    def predict(self, x: np.ndarray) -> np.ndarray: ...
    def loo_mse(self, X: np.ndarray, Y: np.ndarray) -> float: ...


def _normalize(Y: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    y_min = Y.min(axis=0)
    span = Y.max(axis=0) - y_min
    span = np.where(span > 0, span, 1.0)
    return (Y - y_min) / span, y_min, span


def _generic_loo(make, X: np.ndarray, Y: np.ndarray) -> float:
    """Leave-one-out MSE by refitting on each hold-out (normalized space)."""
    X = np.atleast_2d(np.asarray(X, dtype=float))
    Y = np.atleast_2d(np.asarray(Y, dtype=float))
    n = X.shape[0]
    if n < 3:
        raise EstimationError("LOO comparison needs at least three points")
    Y_norm, _, _ = _normalize(Y)
    errors = np.empty(n)
    for i in range(n):
        mask = np.ones(n, dtype=bool)
        mask[i] = False
        model = make().fit(X[mask], Y_norm[mask])
        pred = model.predict(X[i])
        errors[i] = float(((pred - Y_norm[i]) ** 2).mean())
    return float(errors.mean())


@dataclass
class KnnRegressor:
    """Average of the k nearest training values (uniform weights)."""

    k: int = 3
    name: str = field(default="knn", init=False)
    _tree: cKDTree | None = field(default=None, init=False, repr=False)
    _Y: np.ndarray | None = field(default=None, init=False, repr=False)

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "KnnRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if X.shape[0] == 0:
            raise EmptyDatasetError("cannot fit on an empty dataset")
        self._tree = cKDTree(X)
        self._Y = Y
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._tree is None or self._Y is None:
            raise EmptyDatasetError("model is not fitted")
        k = min(self.k, self._Y.shape[0])
        _, idx = self._tree.query(np.asarray(x, dtype=float), k=k)
        idx = np.atleast_1d(idx)
        return self._Y[idx].mean(axis=0)

    def loo_mse(self, X: np.ndarray, Y: np.ndarray) -> float:
        return _generic_loo(lambda: KnnRegressor(k=self.k), X, Y)


@dataclass
class RbfInterpolator:
    """Thin-plate-spline RBF interpolation (SciPy), with ridge smoothing."""

    smoothing: float = 1e-8
    name: str = field(default="rbf", init=False)
    _rbf: RBFInterpolator | None = field(default=None, init=False, repr=False)

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "RbfInterpolator":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if X.shape[0] == 0:
            raise EmptyDatasetError("cannot fit on an empty dataset")
        # Thin-plate needs at least d+1 points; fall back to linear kernel.
        kernel = "thin_plate_spline" if X.shape[0] > X.shape[1] + 1 else "linear"
        self._rbf = RBFInterpolator(
            X, Y, kernel=kernel, smoothing=self.smoothing
        )
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._rbf is None:
            raise EmptyDatasetError("model is not fitted")
        return self._rbf(np.atleast_2d(np.asarray(x, dtype=float)))[0]

    def loo_mse(self, X: np.ndarray, Y: np.ndarray) -> float:
        return _generic_loo(lambda: RbfInterpolator(self.smoothing), X, Y)


@dataclass
class RidgeRegressor:
    """Polynomial ridge regression: the parametric comparator.

    Degree-2 features with L2 regularization; the closed-form normal
    equations keep it dependency-free.
    """

    degree: int = 2
    alpha: float = 1e-3
    name: str = field(default="ridge", init=False)
    _w: np.ndarray | None = field(default=None, init=False, repr=False)
    _x_mean: np.ndarray | None = field(default=None, init=False, repr=False)
    _x_scale: np.ndarray | None = field(default=None, init=False, repr=False)

    def _features(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Xs = (X - self._x_mean) / self._x_scale
        cols = [np.ones((Xs.shape[0], 1)), Xs]
        if self.degree >= 2:
            cols.append(Xs**2)
            # pairwise interactions
            d = Xs.shape[1]
            for i in range(d):
                for j in range(i + 1, d):
                    cols.append((Xs[:, i] * Xs[:, j]).reshape(-1, 1))
        return np.hstack(cols)

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "RidgeRegressor":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        if X.shape[0] == 0:
            raise EmptyDatasetError("cannot fit on an empty dataset")
        self._x_mean = X.mean(axis=0)
        scale = X.std(axis=0)
        self._x_scale = np.where(scale > 0, scale, 1.0)
        phi = self._features(X)
        gram = phi.T @ phi + self.alpha * np.eye(phi.shape[1])
        self._w = np.linalg.solve(gram, phi.T @ Y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._w is None:
            raise EmptyDatasetError("model is not fitted")
        return (self._features(np.atleast_2d(x)) @ self._w)[0]

    def loo_mse(self, X: np.ndarray, Y: np.ndarray) -> float:
        return _generic_loo(
            lambda: RidgeRegressor(self.degree, self.alpha), X, Y
        )


@dataclass
class NwmEstimator:
    """The default Nadaraya-Watson wrapped into the comparison protocol."""

    name: str = field(default="nadaraya-watson", init=False)
    _model: NadarayaWatson | None = field(default=None, init=False, repr=False)

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "NwmEstimator":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        Y = np.atleast_2d(np.asarray(Y, dtype=float))
        model = NadarayaWatson(1.0).fit(X, Y)
        if X.shape[0] >= 2:
            try:
                h, _ = loo_bandwidth(X, model.normalize(Y))
                model.bandwidth = h
            except EstimationError:
                pass
        self._model = model
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._model is None:
            raise EmptyDatasetError("model is not fitted")
        return self._model.predict(np.asarray(x, dtype=float))

    def loo_mse(self, X: np.ndarray, Y: np.ndarray) -> float:
        return _generic_loo(NwmEstimator, X, Y)


def default_candidates() -> list[Estimator]:
    return [NwmEstimator(), KnnRegressor(), RbfInterpolator(), RidgeRegressor()]


def compare_estimators(
    X: np.ndarray,
    Y: np.ndarray,
    candidates: list[Estimator] | None = None,
) -> dict[str, float]:
    """LOO MSE (normalized metric space) per candidate, sorted best first."""
    candidates = candidates or default_candidates()
    scores = {c.name: c.loo_mse(X, Y) for c in candidates}
    return dict(sorted(scores.items(), key=lambda kv: kv[1]))


def select_estimator(
    X: np.ndarray,
    Y: np.ndarray,
    candidates: list[Estimator] | None = None,
) -> tuple[Estimator, dict[str, float]]:
    """Pick the LOO-best estimator, fitted on the full dataset."""
    candidates = candidates or default_candidates()
    scores = compare_estimators(X, Y, candidates)
    best_name = next(iter(scores))
    best = next(c for c in candidates if c.name == best_name)
    # Fit on raw Y so .predict returns raw units (normalization is only for
    # scoring comparability).
    best.fit(X, Y)
    return best, scores
