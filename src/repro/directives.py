"""Synthesis and implementation directives.

Dovado "exposes the possibility of ... customizing the toolchain directives
for a given step, i.e., synthesis, place, and route", letting the user guide
the tool toward run-time performance or area.  VEDA models the same knobs:
each directive maps to quantitative biases consumed by the optimizer, the
placer, and the simulated run-time model.  Values are relative to
``DEFAULT = 1.0``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["SynthDirective", "ImplDirective", "DirectiveSet", "DirectiveEffect"]


@dataclass(frozen=True)
class DirectiveEffect:
    """Quantitative biases of one directive.

    Attributes
    ----------
    effort:
        Multiplier on optimization/placement iterations; more effort costs
        proportionally more (simulated) tool time and yields better QoR.
    area_bias:
        <1 shrinks LUT usage (resource sharing) at a level/delay penalty;
        >1 duplicates logic for speed.
    delay_bias:
        Multiplier on achieved path delays (observed QoR spread between
        directives); <1 is faster.
    runtime_factor:
        Multiplier on the simulated wall-clock cost of the step.
    """

    effort: float = 1.0
    area_bias: float = 1.0
    delay_bias: float = 1.0
    runtime_factor: float = 1.0


class SynthDirective(str, enum.Enum):
    DEFAULT = "Default"
    RUNTIME_OPTIMIZED = "RuntimeOptimized"
    AREA_OPTIMIZED_HIGH = "AreaOptimized_high"
    AREA_OPTIMIZED_MEDIUM = "AreaOptimized_medium"
    PERFORMANCE_OPTIMIZED = "PerformanceOptimized"
    FLOW_ALTERNATE_ROUTABILITY = "AlternateRoutability"

    def __str__(self) -> str:
        return self.value

    def effect(self) -> DirectiveEffect:
        return _SYNTH_EFFECTS[self]


class ImplDirective(str, enum.Enum):
    DEFAULT = "Default"
    RUNTIME_OPTIMIZED = "RuntimeOptimized"
    EXPLORE = "Explore"
    EXPLORE_POST_ROUTE = "ExplorePostRoutePhysOpt"
    SPREAD_LOGIC_HIGH = "AltSpreadLogic_high"

    def __str__(self) -> str:
        return self.value

    def effect(self) -> DirectiveEffect:
        return _IMPL_EFFECTS[self]


_SYNTH_EFFECTS: dict[SynthDirective, DirectiveEffect] = {
    SynthDirective.DEFAULT: DirectiveEffect(),
    SynthDirective.RUNTIME_OPTIMIZED: DirectiveEffect(
        effort=0.5, area_bias=1.06, delay_bias=1.05, runtime_factor=0.55
    ),
    SynthDirective.AREA_OPTIMIZED_HIGH: DirectiveEffect(
        effort=1.2, area_bias=0.88, delay_bias=1.08, runtime_factor=1.30
    ),
    SynthDirective.AREA_OPTIMIZED_MEDIUM: DirectiveEffect(
        effort=1.1, area_bias=0.94, delay_bias=1.04, runtime_factor=1.15
    ),
    SynthDirective.PERFORMANCE_OPTIMIZED: DirectiveEffect(
        effort=1.3, area_bias=1.10, delay_bias=0.94, runtime_factor=1.40
    ),
    SynthDirective.FLOW_ALTERNATE_ROUTABILITY: DirectiveEffect(
        effort=1.1, area_bias=1.03, delay_bias=0.99, runtime_factor=1.20
    ),
}

_IMPL_EFFECTS: dict[ImplDirective, DirectiveEffect] = {
    ImplDirective.DEFAULT: DirectiveEffect(),
    ImplDirective.RUNTIME_OPTIMIZED: DirectiveEffect(
        effort=0.5, delay_bias=1.06, runtime_factor=0.50
    ),
    ImplDirective.EXPLORE: DirectiveEffect(
        effort=1.6, delay_bias=0.95, runtime_factor=1.80
    ),
    ImplDirective.EXPLORE_POST_ROUTE: DirectiveEffect(
        effort=1.9, delay_bias=0.92, runtime_factor=2.30
    ),
    ImplDirective.SPREAD_LOGIC_HIGH: DirectiveEffect(
        effort=1.3, delay_bias=0.98, runtime_factor=1.35
    ),
}


@dataclass(frozen=True)
class DirectiveSet:
    """The directive choice for a full run (synthesis + implementation)."""

    synth: SynthDirective = SynthDirective.DEFAULT
    impl: ImplDirective = ImplDirective.DEFAULT

    @classmethod
    def parse(cls, synth: str = "Default", impl: str = "Default") -> "DirectiveSet":
        """Build from directive name strings (as a TCL script supplies them)."""
        return cls(synth=SynthDirective(synth), impl=ImplDirective(impl))

    def as_dict(self) -> dict[str, str]:
        return {"synth": str(self.synth), "impl": str(self.impl)}
