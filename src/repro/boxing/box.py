"""Box construction and flow integration.

:func:`build_box` selects the clock port, renders the language-appropriate
box source, and returns a :class:`BoxArtifact`.  The artifact knows how to
*install* itself into a :class:`~repro.flow.vivado_sim.VivadoSim` session:
it reads both sources in and registers a transient architectural model for
the box top, which elaborates the inner module under the specialized
parameter values and adds the box's own interface-register ring.  The
boxed run is then ``sim.run(artifact.top)`` with *no* parameter overrides —
the box already carries them, exactly as Dovado's generated wrapper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import NoClockPortError, ParameterOverrideError
from repro.hdl.ast import HdlLanguage, Module
from repro.boxing.verilog_box import render_verilog_box
from repro.boxing.vhdl_box import render_vhdl_box
from repro.netlist import Block, Netlist
from repro.synth.elaborate import elaborate, register_model

__all__ = ["BoxArtifact", "build_box"]


@dataclass(frozen=True)
class BoxArtifact:
    """The generated box plus everything needed to run it."""

    top: str                     # box module name
    source: str                  # box HDL text
    language: HdlLanguage
    inner: Module
    clock_port: str
    overrides: dict[str, int]

    def install(self, sim) -> None:
        """Read the inner + box sources into ``sim`` and register the model.

        ``sim`` is a :class:`repro.flow.VivadoSim`; typed loosely to keep
        the boxing package below the flow package in the import graph.
        """
        inner = self.inner
        overrides = dict(self.overrides)

        def build(module, env: Mapping[str, int]) -> Netlist:
            inner_netlist = elaborate(inner, overrides)
            # The netlist top is named after the *inner* module, not the
            # (possibly per-point unique) box name, so incremental-flow
            # checkpoints keep matching across design points.
            boxed = Netlist(top=f"box:{inner.name}")
            for block in inner_netlist.blocks():
                boxed.add_block(block)
            for net in inner_netlist.nets():
                boxed.add_net(net)
            # The interface-register ring: one FF per module port bit, a
            # pinch of glue LUT for the observation reduction tree.
            port_bits = max(1, inner.total_port_bits(overrides) - 1)  # minus clk
            ring = boxed.add_block(
                Block(
                    name="u_box_ring",
                    logic_terms=max(1, port_bits // 8),
                    ff_bits=port_bits,
                    levels=1,
                )
            )
            anchors = inner_netlist.blocks()
            if anchors:
                boxed.connect(ring.name, anchors[0].name, width=max(1, port_bits // 2))
                boxed.connect(anchors[-1].name, ring.name, width=max(1, port_bits // 2))
            boxed.set_ports(1, 0)  # only clk reaches a pin
            return boxed

        register_model(self.top, build, description=f"box({inner.name})")
        sim.read_hdl(self.source, self.language)


def build_box(
    module: Module,
    overrides: Mapping[str, int] | None = None,
    clock_port: str | None = None,
    box_name: str = "box",
) -> BoxArtifact:
    """Build the box wrapper for ``module`` under ``overrides``.

    Raises :class:`NoClockPortError` when the module exposes no
    identifiable clock and none is named explicitly, and
    :class:`ParameterOverrideError` for overrides that do not match a free
    parameter of the module.
    """
    overrides = {k: int(v) for k, v in (overrides or {}).items()}
    free = {p.name.lower() for p in module.free_parameters()}
    for name in overrides:
        if name.lower() not in free:
            raise ParameterOverrideError(
                f"{module.name!r} has no free parameter {name!r}"
            )
    # Canonicalize override keys to declared casing.
    canonical: dict[str, int] = {}
    for param in module.free_parameters():
        for name, value in overrides.items():
            if name.lower() == param.name.lower():
                canonical[param.name] = value

    if clock_port is None:
        clocks = module.clock_ports()
        if not clocks:
            raise NoClockPortError(
                f"module {module.name!r} has no identifiable clock port; "
                "pass clock_port explicitly"
            )
        clock_port = clocks[0].name
    else:
        module.port(clock_port)  # raises KeyError on unknown name

    if module.language == HdlLanguage.VHDL:
        source = render_vhdl_box(module, clock_port, canonical, box_name=box_name)
    else:
        source = render_verilog_box(module, clock_port, canonical, box_name=box_name)

    return BoxArtifact(
        top=box_name,
        source=source,
        language=module.language,
        inner=module,
        clock_port=clock_port,
        overrides=canonical,
    )
