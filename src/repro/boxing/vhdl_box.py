"""VHDL box rendering (the paper's Listing 1, filled in).

The generated entity has a single clock input; every other port of the
boxed module is tied to an internal signal; the instance is labeled
``BOXED`` and protected with a ``DONT_TOUCH`` attribute; generics are
specialized in the generic map with the design point's values.
"""

from __future__ import annotations

from typing import Mapping

from repro.hdl.ast import Direction, Module, Port

__all__ = ["render_vhdl_box"]


def _fmt_generic_value(module: Module, name: str, value: int) -> str:
    param = module.parameter(name)
    if param.is_boolean() and param.ptype.lower() == "boolean":
        return "true" if value else "false"
    return str(int(value))


def _signal_decl(port: Port) -> str:
    return f"  signal s_{port.name} : {port.ptype.render_vhdl()};"


def render_vhdl_box(
    module: Module,
    clock_port: str,
    overrides: Mapping[str, int],
    box_name: str = "box",
) -> str:
    """Render the VHDL box entity + architecture for ``module``."""
    lines: list[str] = []
    for lib in dict.fromkeys(("ieee", *module.libraries)):
        if lib.lower() == "work":
            continue
        lines.append(f"library {lib};")
    uses = list(dict.fromkeys(module.use_clauses)) or ["ieee.std_logic_1164.all"]
    if not any(u.lower().startswith("ieee.std_logic_1164") for u in uses):
        uses.insert(0, "ieee.std_logic_1164.all")
    for use in uses:
        lines.append(f"use {use};")
    lines.append("")
    lines.append(f"entity {box_name} is")
    lines.append("  port (")
    lines.append("    clk : in std_logic")
    lines.append("  );")
    lines.append(f"end entity {box_name};")
    lines.append("")
    lines.append(f"architecture {box_name}_arch of {box_name} is")
    lines.append("  attribute DONT_TOUCH : string;")
    lines.append('  attribute DONT_TOUCH of BOXED : label is "TRUE";')
    other_ports = [p for p in module.ports if p.name.lower() != clock_port.lower()]
    for port in other_ports:
        lines.append(_signal_decl(port))
    lines.append("begin")
    lines.append(f"  BOXED: entity work.{module.name}")
    free = [p for p in module.parameters if not p.local]
    if free:
        lines.append("    generic map (")
        gm: list[str] = []
        env = module.default_environment()
        for param in free:
            if param.name in overrides:
                value = _fmt_generic_value(module, param.name, overrides[param.name])
            elif param.default is not None:
                # Boolean generics lex to 0/1; restore VHDL literals so the
                # emitted box is legal VHDL.
                default_v = param.default_value(env)
                if param.ptype.lower() == "boolean" and default_v is not None:
                    value = "true" if default_v else "false"
                else:
                    value = param.default.render()
            else:
                # No default and not overridden: bind a benign constant so the
                # elaboration never fails on an open generic.
                value = _fmt_generic_value(module, param.name, env.get(param.name, 1))
            gm.append(f"      {param.name} => {value}")
        lines.append(",\n".join(gm))
        lines.append("    )")
    lines.append("    port map (")
    pm = [f"      {clock_port} => clk"]
    for port in other_ports:
        pm.append(f"      {port.name} => s_{port.name}")
    lines.append(",\n".join(pm))
    lines.append("    );")
    lines.append(f"end architecture {box_name}_arch;")
    return "\n".join(lines) + "\n"
