"""Boxing — Dovado's interface sandboxing step (paper Section III-A2).

Wrapping the module under evaluation in a generated top-level "box" serves
three purposes the paper calls out:

1. **pin-overflow avoidance** — only the clock reaches a device pin; the
   module's (possibly thousands of) interface bits terminate in registers
   inside the box instead of I/O buffers;
2. **no unintended simplification** — the instance carries a ``DONT_TOUCH``
   attribute so synthesis cannot prune interface logic;
3. **parameterization + clock constraint entry point** — the box's
   generic/parameter map is where a design point's values are applied, and
   its single clock input is where the target-period constraint lands
   without naming restrictions.
"""

from repro.boxing.box import BoxArtifact, build_box
from repro.boxing.vhdl_box import render_vhdl_box
from repro.boxing.verilog_box import render_verilog_box

__all__ = ["BoxArtifact", "build_box", "render_vhdl_box", "render_verilog_box"]
