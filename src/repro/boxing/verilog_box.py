"""Verilog/SystemVerilog box rendering — the V/SV counterpart of Listing 1.

Same structure as the VHDL box: single clock input, internal nets for all
other ports, ``(* DONT_TOUCH = "TRUE" *)`` on the instance, parameter
values specialized in the instantiation.
"""

from __future__ import annotations

from typing import Mapping

from repro.hdl.ast import Direction, Module, Port

__all__ = ["render_verilog_box"]


def _net_decl(port: Port) -> str:
    kind = "wire" if port.direction != Direction.IN else "reg"
    # Inputs of the boxed module are driven from box-internal registers (so
    # synthesis sees sequential fanin it cannot const-fold); outputs land on
    # wires observed by a keep-marked reduction register.
    if port.ptype.is_vector():
        rng = f"[{port.ptype.high.render()}:{port.ptype.low.render() if port.ptype.low else '0'}] "
    else:
        rng = ""
    return f"  {kind} {rng}s_{port.name};"


def render_verilog_box(
    module: Module,
    clock_port: str,
    overrides: Mapping[str, int],
    box_name: str = "box",
) -> str:
    """Render the Verilog box module for ``module``."""
    lines: list[str] = [f"module {box_name} ("]
    lines.append("    input wire clk")
    lines.append(");")
    other_ports = [p for p in module.ports if p.name.lower() != clock_port.lower()]
    for port in other_ports:
        lines.append(_net_decl(port))
    lines.append("")
    lines.append('  (* DONT_TOUCH = "TRUE" *)')
    free = [p for p in module.parameters if not p.local]
    if free:
        lines.append(f"  {module.name} #(")
        pm: list[str] = []
        env = module.default_environment()
        for param in free:
            if param.name in overrides:
                value = str(int(overrides[param.name]))
            elif param.default is not None:
                value = param.default.render()
            else:
                value = str(env.get(param.name, 1))
            pm.append(f"    .{param.name}({value})")
        lines.append(",\n".join(pm))
        lines.append("  ) BOXED (")
    else:
        lines.append(f"  {module.name} BOXED (")
    conns = [f"    .{clock_port}(clk)"]
    for port in other_ports:
        conns.append(f"    .{port.name}(s_{port.name})")
    lines.append(",\n".join(conns))
    lines.append("  );")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
