"""FPGA device models: part catalog, resource vectors, timing scaling.

The paper targets a Kintex-7 ``XC7K70TFBV676-1`` (28 nm) for all four case
studies and additionally a Zynq UltraScale+ ``XCZU3EG`` (16 nm) for TiReX.
This package provides those parts (plus a few neighbours for tests) with
public resource counts, and per-process timing models that reproduce the
technology-impact comparison of Fig. 6 vs Fig. 7.
"""

from repro.devices.resources import ResourceKind, ResourceVector, UtilizationReport
from repro.devices.catalog import Device, get_device, list_devices, register_device
from repro.devices.timing_models import ProcessTimingModel, timing_model_for

__all__ = [
    "ResourceKind",
    "ResourceVector",
    "UtilizationReport",
    "Device",
    "get_device",
    "list_devices",
    "register_device",
    "ProcessTimingModel",
    "timing_model_for",
]
