"""Resource kinds, resource vectors, and utilization reports.

A :class:`ResourceVector` is a sparse integer map over :class:`ResourceKind`
supporting elementwise arithmetic; the flow uses it both for device capacity
and for design requirements.  Some kinds (URAM) exist only on some families
— the paper notes such resources are "device-dependent and reported only if
present" — so vectors never invent zero entries for kinds a device lacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator, Mapping

__all__ = ["ResourceKind", "ResourceVector", "UtilizationReport"]


class ResourceKind(str, enum.Enum):
    """The resource classes a Xilinx-style utilization report breaks out."""

    LUT = "LUT"
    FF = "FF"              # flip-flops / registers
    BRAM = "BRAM"          # 36Kb block RAM tiles
    DSP = "DSP"            # DSP48 slices
    CARRY = "CARRY"        # carry chains (CARRY4/CARRY8)
    URAM = "URAM"          # UltraRAM, UltraScale+ only
    IO = "IO"              # user I/O pins
    BUFG = "BUFG"          # global clock buffers

    def __str__(self) -> str:  # keep report text clean ("LUT", not "ResourceKind.LUT")
        return self.value


# Report ordering follows Vivado's utilization report sections.
REPORT_ORDER: tuple[ResourceKind, ...] = (
    ResourceKind.LUT,
    ResourceKind.FF,
    ResourceKind.BRAM,
    ResourceKind.URAM,
    ResourceKind.DSP,
    ResourceKind.CARRY,
    ResourceKind.IO,
    ResourceKind.BUFG,
)


@dataclass(frozen=True)
class ResourceVector:
    """Immutable sparse integer vector over resource kinds."""

    counts: Mapping[ResourceKind, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        clean: dict[ResourceKind, int] = {}
        for kind, n in self.counts.items():
            kind = ResourceKind(kind)
            n = int(n)
            if n < 0:
                raise ValueError(f"negative resource count {kind}: {n}")
            if n:
                clean[kind] = n
        object.__setattr__(self, "counts", clean)

    @classmethod
    def of(cls, **kwargs: int) -> "ResourceVector":
        """Build from keyword args: ``ResourceVector.of(LUT=100, FF=50)``."""
        return cls({ResourceKind(k): v for k, v in kwargs.items()})

    def get(self, kind: ResourceKind | str) -> int:
        return self.counts.get(ResourceKind(kind), 0)

    def __getitem__(self, kind: ResourceKind | str) -> int:
        return self.get(kind)

    def __iter__(self) -> Iterator[tuple[ResourceKind, int]]:
        return iter(sorted(self.counts.items(), key=lambda kv: REPORT_ORDER.index(kv[0])))

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        kinds = set(self.counts) | set(other.counts)
        return ResourceVector({k: self.get(k) + other.get(k) for k in kinds})

    def scaled(self, factor: float) -> "ResourceVector":
        """Multiply every count by ``factor``, rounding to nearest int."""
        if factor < 0:
            raise ValueError("negative scale factor")
        return ResourceVector({k: round(v * factor) for k, v in self.counts.items()})

    def dominates_capacity(self, capacity: "ResourceVector") -> list[ResourceKind]:
        """Kinds where this requirement exceeds ``capacity`` (empty = fits)."""
        return [k for k, v in self.counts.items() if v > capacity.get(k)]

    def as_dict(self) -> dict[str, int]:
        return {str(k): v for k, v in self}

    def total_cells(self) -> int:
        return sum(self.counts.values())


@dataclass(frozen=True)
class UtilizationReport:
    """Used/available/percent per resource kind, as a Vivado report exposes.

    ``percent`` entries only exist for kinds the device actually provides —
    the device-dependent reporting rule from Section III-A4.
    """

    used: ResourceVector
    available: ResourceVector

    def percent(self, kind: ResourceKind | str) -> float:
        kind = ResourceKind(kind)
        avail = self.available.get(kind)
        if avail == 0:
            raise KeyError(f"device provides no {kind} resources")
        return 100.0 * self.used.get(kind) / avail

    def reported_kinds(self) -> list[ResourceKind]:
        """Kinds present on the device, in report order."""
        return [k for k in REPORT_ORDER if self.available.get(k) > 0]

    def rows(self) -> list[tuple[str, int, int, float]]:
        """(kind, used, available, percent) rows for table rendering."""
        return [
            (str(k), self.used.get(k), self.available.get(k), self.percent(k))
            for k in self.reported_kinds()
        ]

    def overflows(self) -> list[ResourceKind]:
        return self.used.dominates_capacity(self.available)
