"""Process-node timing models.

The simulated static timing analysis composes path delay from primitive
delays plus routing; both scale with the silicon process.  The paper's
Fig. 6/7 comparison hinges on exactly this: the 16 nm ZU3EG reaches ~550 MHz
where the 28 nm XC7K70T reaches ~190 MHz on near-identical TiReX
configurations (roughly a 2.9x gap).  The per-node constants below are
calibrated so small logic on -1 speed-grade parts lands in those ranges;
they are *model* constants, not datasheet values, and are documented as such
in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProcessTimingModel", "timing_model_for", "KNOWN_PROCESSES"]


@dataclass(frozen=True)
class ProcessTimingModel:
    """Delay constants (ns) for one process node / speed grade family.

    Attributes
    ----------
    process_nm:
        Feature size; used only for reporting.
    lut_delay_ns:
        Logic delay through one LUT stage.
    net_delay_ns:
        Nominal routed net delay between adjacent placed cells.
    ff_setup_ns / ff_clk_to_q_ns:
        Register timing overheads added once per register-to-register path.
    carry_delay_ns:
        Per-bit carry-chain delay (fast path, much smaller than LUT delay).
    bram_access_ns / dsp_delay_ns:
        Block primitive access delays (paths through BRAM/DSP are long).
    congestion_exponent:
        How superlinearly routing delay grows with placement congestion;
        denser processes route relatively better (lower exponent).
    """

    name: str
    process_nm: int
    lut_delay_ns: float
    net_delay_ns: float
    ff_setup_ns: float
    ff_clk_to_q_ns: float
    carry_delay_ns: float
    bram_access_ns: float
    dsp_delay_ns: float
    congestion_exponent: float

    def min_register_period_ns(self) -> float:
        """Lower bound on any register-to-register period (FF overheads only)."""
        return self.ff_setup_ns + self.ff_clk_to_q_ns

    def logic_path_delay_ns(self, lut_levels: int, routed_hops: int) -> float:
        """Delay of a pure-LUT path with ``lut_levels`` logic levels."""
        if lut_levels < 0 or routed_hops < 0:
            raise ValueError("negative path components")
        return lut_levels * self.lut_delay_ns + routed_hops * self.net_delay_ns


# Calibration notes:
#   * 28 nm 7-series -1: a LUT stage (LUT + local route) costs ~0.50 ns, so
#     an 8-level register-to-register path with FF overheads lands near
#     5 ns (~200 MHz) — matching the Corundum/TiReX XC7K70T results.
#   * 16 nm UltraScale+ -1: the same path lands near 1.9 ns (~520 MHz),
#     matching TiReX on ZU3EG (~550 MHz at shallower configs).
KNOWN_PROCESSES: dict[str, ProcessTimingModel] = {
    "28nm": ProcessTimingModel(
        name="28nm",
        process_nm=28,
        lut_delay_ns=0.25,
        net_delay_ns=0.45,
        ff_setup_ns=0.30,
        ff_clk_to_q_ns=0.35,
        carry_delay_ns=0.012,
        bram_access_ns=1.70,
        dsp_delay_ns=1.90,
        congestion_exponent=1.55,
    ),
    "16nm": ProcessTimingModel(
        name="16nm",
        process_nm=16,
        lut_delay_ns=0.095,
        net_delay_ns=0.155,
        ff_setup_ns=0.09,
        ff_clk_to_q_ns=0.11,
        carry_delay_ns=0.006,
        bram_access_ns=0.62,
        dsp_delay_ns=0.85,
        congestion_exponent=1.40,
    ),
    # 20 nm UltraScale, between the two; used by catalog extras/tests.
    "20nm": ProcessTimingModel(
        name="20nm",
        process_nm=20,
        lut_delay_ns=0.17,
        net_delay_ns=0.30,
        ff_setup_ns=0.20,
        ff_clk_to_q_ns=0.23,
        carry_delay_ns=0.009,
        bram_access_ns=1.15,
        dsp_delay_ns=1.35,
        congestion_exponent=1.48,
    ),
}


def timing_model_for(process: str) -> ProcessTimingModel:
    """Look up a timing model by process name (``"28nm"`` / ``"16nm"`` / ``"20nm"``)."""
    try:
        return KNOWN_PROCESSES[process]
    except KeyError:
        known = ", ".join(sorted(KNOWN_PROCESSES))
        raise KeyError(f"unknown process {process!r}; known: {known}") from None
