"""The FPGA part catalog.

Resource counts are the public figures for each part (Xilinx product
tables): the paper itself quotes "the ZU3EG has 70K LUTs and 141k Flip
Flops, while the XC7K70T has 41k LUT and 82K FF".  Speed-grade scaling is
modeled as a multiplicative delay factor on the process timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.resources import ResourceKind, ResourceVector
from repro.devices.timing_models import ProcessTimingModel, timing_model_for
from repro.errors import UnknownDeviceError

__all__ = ["Device", "get_device", "list_devices", "register_device"]


@dataclass(frozen=True)
class Device:
    """One FPGA part: identity, capacity, grid geometry, timing.

    ``grid_cols``/``grid_rows`` define the placement fabric used by the
    simulated annealing placer; they approximate the part's CLB array shape.
    """

    part: str
    family: str
    process: str
    speed_grade: int
    resources: ResourceVector
    grid_cols: int
    grid_rows: int
    speed_factor: float = 1.0
    aliases: tuple[str, ...] = field(default_factory=tuple)

    def timing(self) -> ProcessTimingModel:
        return timing_model_for(self.process)

    def has_resource(self, kind: ResourceKind | str) -> bool:
        return self.resources.get(kind) > 0

    def capacity(self, kind: ResourceKind | str) -> int:
        return self.resources.get(kind)

    def cells_per_site(self) -> float:
        """Average LUT+FF capacity per placement grid site."""
        sites = self.grid_cols * self.grid_rows
        return (self.resources.get("LUT") + self.resources.get("FF")) / sites


def _mk(part: str, **kw: object) -> Device:
    return Device(part=part, **kw)  # type: ignore[arg-type]


_CATALOG: dict[str, Device] = {}


def register_device(device: Device) -> None:
    """Add a device (and its aliases) to the catalog; names are case-insensitive."""
    for name in (device.part, *device.aliases):
        key = name.lower()
        if key in _CATALOG and _CATALOG[key].part != device.part:
            raise ValueError(f"device name collision: {name}")
        _CATALOG[key] = device


def get_device(name: str) -> Device:
    """Look up a part by name or alias (case-insensitive)."""
    try:
        return _CATALOG[name.lower()]
    except KeyError:
        known = ", ".join(sorted({d.part for d in _CATALOG.values()}))
        raise UnknownDeviceError(f"unknown device {name!r}; known parts: {known}") from None


def list_devices() -> list[Device]:
    """All registered devices, deduplicated, sorted by part name."""
    seen: dict[str, Device] = {}
    for dev in _CATALOG.values():
        seen.setdefault(dev.part, dev)
    return sorted(seen.values(), key=lambda d: d.part)


# ---------------------------------------------------------------------------
# Built-in parts
# ---------------------------------------------------------------------------

register_device(
    Device(
        part="XC7K70TFBV676-1",
        family="Kintex-7",
        process="28nm",
        speed_grade=1,
        # Kintex-7 70T: 41,000 LUTs, 82,000 FFs, 135 BRAM36, 240 DSP48E1.
        resources=ResourceVector.of(
            LUT=41000, FF=82000, BRAM=135, DSP=240, CARRY=10250, IO=300, BUFG=32
        ),
        grid_cols=54,
        grid_rows=80,
        speed_factor=1.00,
        aliases=("XC7K70T", "xc7k70tfbv676-1", "kintex7-70t"),
    )
)

register_device(
    Device(
        part="XCZU3EG-SBVA484-1",
        family="Zynq UltraScale+",
        process="16nm",
        speed_grade=1,
        # ZU3EG: 70,560 LUTs, 141,120 FFs, 216 BRAM36, 360 DSP48E2; no URAM.
        resources=ResourceVector.of(
            LUT=70560, FF=141120, BRAM=216, DSP=360, CARRY=8820, IO=252, BUFG=196
        ),
        grid_cols=64,
        grid_rows=96,
        speed_factor=1.00,
        aliases=("ZU3EG", "XCZU3EG", "zynq-zu3eg"),
    )
)

register_device(
    Device(
        part="XCZU9EG-FFVB1156-2",
        family="Zynq UltraScale+",
        process="16nm",
        speed_grade=2,
        # ZU9EG: 274,080 LUTs, 548,160 FFs, 912 BRAM36, 2,520 DSP, no URAM.
        resources=ResourceVector.of(
            LUT=274080, FF=548160, BRAM=912, DSP=2520, CARRY=34260, IO=328, BUFG=404
        ),
        grid_cols=120,
        grid_rows=168,
        speed_factor=0.92,
        aliases=("ZU9EG",),
    )
)

register_device(
    Device(
        part="XCVU9P-FLGA2104-2",
        family="Virtex UltraScale+",
        process="16nm",
        speed_grade=2,
        # VU9P: 1,182,240 LUTs, 2,364,480 FFs, 2,160 BRAM36, 960 URAM, 6,840 DSP.
        resources=ResourceVector.of(
            LUT=1182240, FF=2364480, BRAM=2160, URAM=960, DSP=6840,
            CARRY=147780, IO=676, BUFG=1800,
        ),
        grid_cols=228,
        grid_rows=344,
        speed_factor=0.92,
        aliases=("VU9P",),
    )
)

register_device(
    Device(
        part="XC7A35TICSG324-1L",
        family="Artix-7",
        process="28nm",
        speed_grade=1,
        # Artix-7 35T (common hobby part): 20,800 LUTs, 41,600 FFs, 50 BRAM36, 90 DSP.
        resources=ResourceVector.of(
            LUT=20800, FF=41600, BRAM=50, DSP=90, CARRY=5200, IO=210, BUFG=32
        ),
        grid_cols=38,
        grid_rows=60,
        speed_factor=1.12,
        aliases=("XC7A35T", "arty-a35t"),
    )
)
