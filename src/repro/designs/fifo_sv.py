"""cv32e40p FIFO case study (SystemVerilog) — paper Section IV-A.

The paper assesses the approximation model on "a SystemVerilog FIFO
submodule [of cv32e40p] exploring the depth parameter" with a range of 500
values, targeting the XC7K70T.  The emitted module mirrors the PULP
``fifo_v3`` interface the core uses; the architectural model scales the way
a synchronous FIFO synthesizes:

- storage: ``DEPTH × DATA_WIDTH`` bits — LUTRAM below the distributed
  threshold, BRAM above (a visible resource step the estimator must learn);
- pointers/counters: two Gray/binary counters of ``clog2(DEPTH)`` bits plus
  a status counter, riding carry chains;
- full/empty compare and output mux logic growing with ``clog2(DEPTH)`` and
  ``DATA_WIDTH``;
- depth grows address-decode levels logarithmically, which (with the BRAM
  access once storage spills into block RAM) gives the smooth-but-kinked
  frequency surface of Fig. 3c.
"""

from __future__ import annotations

from typing import Mapping

from repro.designs.base import DesignGenerator, ParamInfo
from repro.hdl.ast import HdlLanguage, Module
from repro.netlist import Block, Netlist

__all__ = ["generator", "SOURCE", "TOP"]

TOP = "fifo_v3"

SOURCE = """\
// Synchronous FIFO in the style of the PULP platform fifo_v3 used by
// the cv32e40p core (prefetch buffer).  Interface subset.
module fifo_v3 #(
    parameter bit          FALL_THROUGH = 1'b0,
    parameter int unsigned DATA_WIDTH   = 32,
    parameter int unsigned DEPTH        = 8,
    localparam int unsigned ADDR_DEPTH  = (DEPTH > 1) ? $clog2(DEPTH) : 1
)(
    input  logic                  clk_i,
    input  logic                  rst_ni,
    input  logic                  flush_i,
    input  logic                  testmode_i,
    output logic                  full_o,
    output logic                  empty_o,
    output logic [ADDR_DEPTH-1:0] usage_o,
    input  logic [DATA_WIDTH-1:0] data_i,
    input  logic                  push_i,
    output logic [DATA_WIDTH-1:0] data_o,
    input  logic                  pop_i
);
    // storage + pointers (behavioural body; the DSE consumes the interface)
    logic [DATA_WIDTH-1:0] mem [DEPTH-1:0];
    logic [ADDR_DEPTH-1:0] read_pointer_q, write_pointer_q;
    logic [ADDR_DEPTH:0]   status_cnt_q;

    always_ff @(posedge clk_i or negedge rst_ni) begin
        if (!rst_ni) begin
            read_pointer_q  <= '0;
            write_pointer_q <= '0;
            status_cnt_q    <= '0;
        end else begin
            if (push_i && !full_o) begin
                mem[write_pointer_q] <= data_i;
                write_pointer_q <= write_pointer_q + 1'b1;
                status_cnt_q <= status_cnt_q + 1'b1;
            end
            if (pop_i && !empty_o) begin
                read_pointer_q <= read_pointer_q + 1'b1;
                status_cnt_q <= status_cnt_q - 1'b1;
            end
        end
    end

    assign full_o  = (status_cnt_q == DEPTH);
    assign empty_o = (status_cnt_q == 0) && !(FALL_THROUGH && push_i);
    assign usage_o = status_cnt_q[ADDR_DEPTH-1:0];
    assign data_o  = mem[read_pointer_q];
endmodule
"""


def _clog2(n: int) -> int:
    return max(1, (max(2, n) - 1).bit_length())


def build_netlist(module: Module, env: Mapping[str, int]) -> Netlist:
    depth = max(2, env.get("DEPTH", 8))
    width = max(1, env.get("DATA_WIDTH", 32))
    fall_through = bool(env.get("FALL_THROUGH", 0))
    addr = _clog2(depth)

    netlist = Netlist(top=module.name)
    mem_bits = depth * width
    storage = netlist.add_block(
        Block(
            name="u_storage",
            logic_terms=addr * 2,          # read/write decode assists
            ff_bits=0,
            mem_bits=mem_bits,
            mem_width=width,
            levels=1 + addr // 4,          # address decode deepens with depth
            registered_output=False,
            through_memory=mem_bits > 1024,
        )
    )
    pointers = netlist.add_block(
        Block(
            name="u_pointers",
            logic_terms=3 * addr + 8,
            ff_bits=2 * addr + (addr + 1),  # rd/wr pointers + status counter
            carry_bits=2 * addr + (addr + 1),
            levels=2,
        )
    )
    status = netlist.add_block(
        Block(
            name="u_status",
            logic_terms=addr + 6 + (4 if fall_through else 0),
            ff_bits=2,
            levels=2,
            registered_output=False,
        )
    )
    outmux = netlist.add_block(
        Block(
            name="u_outmux",
            # Output data mux: width bits, depth legs → log-depth mux tree.
            logic_terms=width * max(1, addr // 2) + (width if fall_through else 0),
            ff_bits=width,
            levels=max(1, addr // 2),
        )
    )
    netlist.connect("u_pointers", "u_storage", width=addr, combinational=True)
    netlist.connect("u_storage", "u_outmux", width=width, combinational=True)
    netlist.connect("u_pointers", "u_status", width=addr + 1, combinational=True)
    netlist.connect("u_status", "u_outmux", width=2, combinational=True)
    netlist.connect("u_outmux", "u_pointers", width=2)
    return netlist


def generator() -> DesignGenerator:
    """Build the FIFO generator (paper exploration: DEPTH over 500 values)."""
    return DesignGenerator(
        name="cv32e40p-fifo",
        top=TOP,
        language=HdlLanguage.SYSTEMVERILOG,
        emit=lambda: SOURCE,
        model=build_netlist,
        params=(
            ParamInfo("DEPTH", 4, 503),          # 500 possible values
            ParamInfo("DATA_WIDTH", 8, 128),
            ParamInfo("FALL_THROUGH", 0, 1),
        ),
        description="PULP fifo_v3-style FIFO (cv32e40p prefetch buffer)",
    )
