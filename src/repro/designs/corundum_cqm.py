"""Corundum completion queue manager case study (Verilog) — Section IV-B.

The paper explores "a non-top module implementing a completion queue
manager", with design parameters *number of outstanding operations*
(Table I: 8–35), *number of queues* (4–7), and *pipeline stages* (2–5),
targeting the XC7K70T with the approximator disabled.  Reported shape:
BRAM constant across all non-dominated configurations, LUT/register counts
varying with the configuration, frequency near 200 MHz.

Architectural model, following the real ``cpl_queue_manager``:

- a queue-state RAM sized by the *maximum supported* queue index width —
  the RTL allocates ``2**QUEUE_INDEX_WIDTH`` entries regardless of how many
  queues are active, which is exactly why BRAM stays constant while the
  explored "number of queues" knob moves (it shifts match/arbiter logic,
  not storage);
- an operation table (the outstanding-operations CAM): LUT/FF grow
  ~linearly with ``OP_TABLE_SIZE`` and its match depth grows with
  ``clog2``;
- an AXI-lite register slice per pipeline stage: each stage adds FF (and a
  little LUT) and *shortens* the critical path — the classic
  area-vs-frequency trade the Pareto front exposes.
"""

from __future__ import annotations

from typing import Mapping

from repro.designs.base import DesignGenerator, ParamInfo
from repro.hdl.ast import HdlLanguage, Module
from repro.netlist import Block, Netlist

__all__ = ["generator", "SOURCE", "TOP"]

TOP = "cpl_queue_manager"

SOURCE = """\
/*
 * Completion queue manager, interface in the style of Corundum's
 * cpl_queue_manager.v (mqnic).  Behavioural body elided to the state
 * elements relevant for the DSE interface.
 */
module cpl_queue_manager #(
    // number of outstanding operations the op table tracks
    parameter OP_TABLE_SIZE = 16,
    // number of active queues handled by the arbiter
    parameter QUEUE_COUNT = 4,
    // output pipeline register stages
    parameter PIPELINE = 2,
    // width of a queue index (sizes the state RAM)
    parameter QUEUE_INDEX_WIDTH = 8,
    // completion record size
    parameter CPL_SIZE = 16,
    localparam CL_OP_TABLE_SIZE = $clog2(OP_TABLE_SIZE),
    localparam QUEUE_RAM_WIDTH = 128
)(
    input  wire                          clk,
    input  wire                          rst,

    input  wire [QUEUE_INDEX_WIDTH-1:0]  s_axis_enqueue_req_queue,
    input  wire                          s_axis_enqueue_req_valid,
    output wire                          s_axis_enqueue_req_ready,

    output wire [CL_OP_TABLE_SIZE-1:0]   m_axis_enqueue_resp_op_tag,
    output wire                          m_axis_enqueue_resp_valid,
    input  wire                          m_axis_enqueue_resp_ready,

    input  wire [CL_OP_TABLE_SIZE-1:0]   s_axis_enqueue_commit_op_tag,
    input  wire                          s_axis_enqueue_commit_valid,
    output wire                          s_axis_enqueue_commit_ready,

    output wire [QUEUE_INDEX_WIDTH-1:0]  m_axis_event_queue,
    output wire                          m_axis_event_valid,

    input  wire [QUEUE_INDEX_WIDTH-1:0]  s_axil_awaddr,
    input  wire                          s_axil_awvalid,
    output wire                          s_axil_awready,
    input  wire [31:0]                   s_axil_wdata,
    input  wire                          s_axil_wvalid,
    output wire                          s_axil_wready,
    output wire [31:0]                   s_axil_rdata,
    output wire                          s_axil_rvalid,

    output wire                          busy
);
    reg [QUEUE_RAM_WIDTH-1:0] queue_ram [(2**QUEUE_INDEX_WIDTH)-1:0];
    reg [CL_OP_TABLE_SIZE-1:0] op_table_start_ptr_reg;
    reg busy_reg;
    assign busy = busy_reg;
endmodule
"""


def _clog2(n: int) -> int:
    return max(1, (max(2, n) - 1).bit_length())


QUEUE_RAM_WIDTH = 128


def build_netlist(module: Module, env: Mapping[str, int]) -> Netlist:
    ops = max(2, env.get("OP_TABLE_SIZE", 16))
    queues = max(1, env.get("QUEUE_COUNT", 4))
    pipeline = max(1, env.get("PIPELINE", 2))
    qiw = max(2, env.get("QUEUE_INDEX_WIDTH", 8))
    cpl = max(8, env.get("CPL_SIZE", 16))
    cl_ops = _clog2(ops)

    netlist = Netlist(top=module.name)

    # Queue state RAM: 2^QIW entries × 128b — fixed by QIW, hence the
    # BRAM-constant behaviour across the explored knobs.
    netlist.add_block(
        Block(
            name="u_queue_ram",
            logic_terms=qiw * 4,
            ff_bits=QUEUE_RAM_WIDTH,        # output register stage of the RAM
            mem_bits=(2**qiw) * QUEUE_RAM_WIDTH,
            mem_width=QUEUE_RAM_WIDTH,
            levels=2,
            through_memory=True,
        )
    )

    # Operation table: per-entry valid/commit state plus a match network
    # across all entries (the outstanding-op CAM).
    netlist.add_block(
        Block(
            name="u_op_table",
            logic_terms=ops * (qiw + 10) // 2 + ops * 3,
            ff_bits=ops * (qiw + 6),
            carry_bits=cl_ops * 2,
            levels=2 + cl_ops // 2,          # match tree deepens with table
            registered_output=False,
        )
    )

    # Queue arbiter/selector across active queues.
    netlist.add_block(
        Block(
            name="u_arbiter",
            logic_terms=queues * (qiw + 4) + 2 ** _clog2(queues),
            ff_bits=queues * 2 + qiw,
            levels=1 + _clog2(queues),
            registered_output=False,
        )
    )

    # Enqueue/commit control FSM and completion record assembly.
    netlist.add_block(
        Block(
            name="u_ctrl",
            logic_terms=90 + cpl * 2,
            ff_bits=48 + cpl,
            carry_bits=qiw,
            levels=3,
            registered_output=False,
        )
    )

    # AXI-lite interface.
    netlist.add_block(
        Block(name="u_axil", logic_terms=70, ff_bits=80, levels=2)
    )

    # Output pipeline: PIPELINE register slices over the response datapath.
    # Each stage adds registers and one mux layer of LUTs; crucially the
    # *ctrl→out path is cut* into `pipeline` registered hops, so more stages
    # raise Fmax while costing FF/LUT.
    stage_width = QUEUE_RAM_WIDTH + cl_ops + 8
    prev = "u_ctrl"
    for s in range(pipeline):
        name = f"u_pipe{s}"
        netlist.add_block(
            Block(
                name=name,
                logic_terms=stage_width // 3,
                ff_bits=stage_width,
                levels=1,
            )
        )
        # Registered hop: each stage terminates the path from `prev`.
        netlist.connect(prev, name, width=stage_width, combinational=prev == "u_ctrl")
        prev = name

    # Combinational interconnect: the per-cycle read-modify-write loop.
    netlist.connect("u_arbiter", "u_queue_ram", width=qiw, combinational=True)
    netlist.connect("u_queue_ram", "u_op_table", width=QUEUE_RAM_WIDTH, combinational=True)
    netlist.connect("u_op_table", "u_ctrl", width=cl_ops + 4, combinational=True)
    netlist.connect("u_axil", "u_arbiter", width=qiw)
    netlist.connect(prev, "u_axil", width=32)
    # Deeper pipelines retime the RAM→op-table crossing: stages beyond 2
    # shave levels off the op table's match network.
    if pipeline >= 3:
        current = netlist.block("u_op_table")
        netlist.replace_block(
            "u_op_table", levels=max(2, current.levels - (pipeline - 2))
        )
    return netlist


def generator() -> DesignGenerator:
    """Corundum CQM generator (Table I ranges)."""
    from repro.perf import StaticThroughputModel, register_performance_model

    # Completions per second: one enqueue per cycle in steady state, but the
    # op table bounds the outstanding window — an undersized table stalls
    # the pipeline on round trips (modeled as a utilization factor).
    register_performance_model(
        TOP,
        StaticThroughputModel(
            items_per_cycle=lambda p: min(
                1.0, p.get("OP_TABLE_SIZE", 16) / (4.0 * p.get("PIPELINE", 2) + 8.0)
            ),
            description="queue completions per second",
        ),
    )
    return DesignGenerator(
        name="corundum-cqm",
        top=TOP,
        language=HdlLanguage.VERILOG,
        emit=lambda: SOURCE,
        model=build_netlist,
        params=(
            ParamInfo("OP_TABLE_SIZE", 8, 40),
            ParamInfo("QUEUE_COUNT", 4, 8),
            ParamInfo("PIPELINE", 2, 5),
        ),
        description="Corundum mqnic completion queue manager",
    )
