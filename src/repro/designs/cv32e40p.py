"""cv32e40p core-level case study (SystemVerilog).

The paper's Section IV-A uses a submodule of the OpenHW cv32e40p — the
prefetch-buffer FIFO (see :mod:`repro.designs.fifo_sv`).  This generator
models the *whole core*, giving the library a realistic many-thousand-LUT
SystemVerilog design with the knobs the real IP exposes:

- ``FPU`` — the optional CV-FPU: a large LUT/FF/DSP block whose deep
  multiply-add path drags Fmax down;
- ``PULP_XPULP`` — the XPULP custom-extension datapath (hardware loops,
  post-increment LSU, SIMD): wider decode and extra ALU logic;
- ``NUM_MHPMCOUNTERS`` — performance-counter count (0–29), a clean linear
  FF/LUT knob in the CSR block.

Footprint anchors follow the published cv32e40p FPGA results (≈6–7 k LUTs
base, roughly +60 % with the FPU on 7-series).
"""

from __future__ import annotations

from typing import Mapping

from repro.designs.base import DesignGenerator, ParamInfo
from repro.hdl.ast import HdlLanguage, Module
from repro.netlist import Block, Netlist

__all__ = ["generator", "SOURCE", "TOP"]

TOP = "cv32e40p_core"

SOURCE = """\
// OpenHW cv32e40p RISC-V core (interface subset).
module cv32e40p_core #(
    parameter PULP_XPULP       = 0,
    parameter PULP_CLUSTER     = 0,
    parameter FPU              = 0,
    parameter NUM_MHPMCOUNTERS = 1
)(
    input  logic        clk_i,
    input  logic        rst_ni,
    input  logic        scan_cg_en_i,
    input  logic [31:0] boot_addr_i,
    input  logic [31:0] hart_id_i,

    // instruction memory interface
    output logic        instr_req_o,
    input  logic        instr_gnt_i,
    input  logic        instr_rvalid_i,
    output logic [31:0] instr_addr_o,
    input  logic [31:0] instr_rdata_i,

    // data memory interface
    output logic        data_req_o,
    input  logic        data_gnt_i,
    input  logic        data_rvalid_i,
    output logic        data_we_o,
    output logic [3:0]  data_be_o,
    output logic [31:0] data_addr_o,
    output logic [31:0] data_wdata_o,
    input  logic [31:0] data_rdata_i,

    input  logic [31:0] irq_i,
    output logic        irq_ack_o,
    output logic [4:0]  irq_id_o,

    input  logic        debug_req_i,
    output logic        core_sleep_o
);
    // pipeline elided; the DSE consumes the interface
endmodule
"""


def build_netlist(module: Module, env: Mapping[str, int]) -> Netlist:
    fpu = bool(env.get("FPU", 0))
    xpulp = bool(env.get("PULP_XPULP", 0))
    counters = max(0, min(29, env.get("NUM_MHPMCOUNTERS", 1)))

    netlist = Netlist(top=module.name)

    # IF stage: prefetch buffer (the paper's FIFO lives here) + aligner.
    netlist.add_block(
        Block(
            name="u_if_stage",
            logic_terms=650 + (180 if xpulp else 0),   # hwloop fetch control
            ff_bits=420,
            mem_bits=16 * 32,                          # prefetch FIFO, LUTRAM
            mem_width=32,
            carry_bits=32,
            levels=3,
        )
    )
    # ID stage: decoder + register file (flip-flop based on FPGA targets).
    netlist.add_block(
        Block(
            name="u_id_stage",
            logic_terms=1450 + (520 if xpulp else 0) + (260 if fpu else 0),
            ff_bits=1120 + (32 * 32 if fpu else 0),    # FP register file
            levels=4 + (1 if xpulp else 0),
            registered_output=False,
        )
    )
    # EX stage: ALU + integer multiplier.
    netlist.add_block(
        Block(
            name="u_ex_stage",
            logic_terms=1650 + (640 if xpulp else 0),  # SIMD/dot-product ops
            ff_bits=380,
            carry_bits=64,
            mul_ops=4,
            levels=6,
            through_dsp=True,
            registered_output=False,
        )
    )
    # Load/store unit.
    netlist.add_block(
        Block(
            name="u_lsu",
            logic_terms=720 + (210 if xpulp else 0),   # post-increment address
            ff_bits=310,
            carry_bits=32,
            levels=3,
        )
    )
    # CSRs: counters dominate the scaling.
    netlist.add_block(
        Block(
            name="u_cs_registers",
            logic_terms=540 + counters * 46,
            ff_bits=620 + counters * 64,               # 64-bit counters
            carry_bits=counters * 4,
            levels=3,
        )
    )
    # Optional FPU: big, deep, DSP-heavy.
    if fpu:
        netlist.add_block(
            Block(
                name="u_fpu",
                logic_terms=3900,
                ff_bits=1750,
                mul_ops=9,
                carry_bits=64,
                levels=9,                              # FMA mantissa path
                through_dsp=True,
                registered_output=False,
            )
        )
    # Sleep/clock-gating controller.
    netlist.add_block(
        Block(name="u_sleep_unit", logic_terms=60, ff_bits=24, levels=2)
    )

    netlist.connect("u_if_stage", "u_id_stage", width=32, combinational=True)
    netlist.connect("u_id_stage", "u_ex_stage", width=96, combinational=True)
    netlist.connect("u_ex_stage", "u_lsu", width=70, combinational=True)
    netlist.connect("u_lsu", "u_id_stage", width=32)
    netlist.connect("u_id_stage", "u_cs_registers", width=44)
    netlist.connect("u_cs_registers", "u_id_stage", width=32)
    netlist.connect("u_sleep_unit", "u_if_stage", width=2)
    if fpu:
        netlist.connect("u_id_stage", "u_fpu", width=100)
        netlist.connect("u_fpu", "u_ex_stage", width=33, combinational=True)
    return netlist


def generator() -> DesignGenerator:
    """cv32e40p core generator."""
    return DesignGenerator(
        name="cv32e40p",
        top=TOP,
        language=HdlLanguage.SYSTEMVERILOG,
        emit=lambda: SOURCE,
        model=build_netlist,
        params=(
            ParamInfo("FPU", 0, 1),
            ParamInfo("PULP_XPULP", 0, 1),
            ParamInfo("NUM_MHPMCOUNTERS", 0, 29),
        ),
        description="OpenHW cv32e40p RISC-V core",
    )
