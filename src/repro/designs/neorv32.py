"""Neorv32 case study (VHDL) — paper Section IV-C.

The paper tests "the top module and explore[s] as module parameters the
instruction and data memory sizes", restricted to powers of two, on the
XC7K70T.  Reported shape (Fig. 5): five non-dominated solutions; memories
of 2^15 bytes cause a sensible BRAM jump versus 2^14/2^13 "while leaving
almost unchanged the other metrics".

The emitted entity mirrors the neorv32_top generic style (MEM_INT_IMEM_SIZE
/ MEM_INT_DMEM_SIZE in bytes).  The architectural model anchors the core
complex at the public neorv32 footprint (≈2.5k LUTs / ≈1.9k FFs for an
rv32imc configuration) and sizes IMEM/DMEM as byte-addressed BRAMs; the
address-decode depth grows with log2 of the memory size, nudging frequency
down slightly at large memories — the "almost unchanged" secondary effect.
"""

from __future__ import annotations

from typing import Mapping

from repro.designs.base import DesignGenerator, ParamInfo
from repro.hdl.ast import HdlLanguage, Module
from repro.netlist import Block, Netlist

__all__ = ["generator", "SOURCE", "TOP"]

TOP = "neorv32_top"

SOURCE = """\
-- NEORV32-style processor top (interface subset).
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity neorv32_top is
  generic (
    CLOCK_FREQUENCY   : natural := 100000000;
    MEM_INT_IMEM_SIZE : natural := 16384;  -- bytes, power of two
    MEM_INT_DMEM_SIZE : natural := 8192;   -- bytes, power of two
    CPU_EXTENSION_RISCV_C : boolean := true;
    CPU_EXTENSION_RISCV_M : boolean := true;
    FAST_MUL_EN       : boolean := false
  );
  port (
    clk_i  : in  std_logic;
    rstn_i : in  std_logic;
    gpio_o : out std_logic_vector(31 downto 0);
    gpio_i : in  std_logic_vector(31 downto 0);
    uart0_txd_o : out std_logic;
    uart0_rxd_i : in  std_logic
  );
end entity neorv32_top;

architecture neorv32_top_rtl of neorv32_top is
begin
  -- processor subsystem elided; the DSE consumes the interface
end architecture neorv32_top_rtl;
"""


def _log2(n: int) -> int:
    return max(1, (max(2, n) - 1).bit_length())


def build_netlist(module: Module, env: Mapping[str, int]) -> Netlist:
    imem_bytes = max(1024, env.get("MEM_INT_IMEM_SIZE", 16384))
    dmem_bytes = max(1024, env.get("MEM_INT_DMEM_SIZE", 8192))
    ext_c = bool(env.get("CPU_EXTENSION_RISCV_C", 1))
    ext_m = bool(env.get("CPU_EXTENSION_RISCV_M", 1))
    fast_mul = bool(env.get("FAST_MUL_EN", 0))

    netlist = Netlist(top=module.name)

    # 4-stage in-order rv32 core complex (public neorv32 footprint anchors).
    core_luts = 2100 + (260 if ext_c else 0) + (0 if fast_mul else (420 if ext_m else 0))
    core_ffs = 1750 + (120 if ext_c else 0)
    netlist.add_block(
        Block(
            name="u_cpu",
            logic_terms=core_luts,
            ff_bits=core_ffs,
            carry_bits=64,          # ALU + PC adders
            levels=6,               # ALU/branch resolve path
            registered_output=False,
            through_dsp=fast_mul,
        )
    )
    if ext_m and fast_mul:
        netlist.add_block(
            Block(name="u_muldiv", logic_terms=180, ff_bits=140, mul_ops=4,
                  levels=2, through_dsp=True)
        )

    # Internal instruction / data memories: byte-addressed, 32-bit wide.
    for label, nbytes in (("imem", imem_bytes), ("dmem", dmem_bytes)):
        decode = _log2(nbytes)
        netlist.add_block(
            Block(
                name=f"u_{label}",
                logic_terms=decode * 6,
                ff_bits=34,
                mem_bits=nbytes * 8,
                mem_width=32,
                levels=1 + decode // 6,   # wider decode, slightly deeper
                through_memory=True,
                registered_output=False,
            )
        )

    # Internal bus switch + peripherals (GPIO, UART, sysinfo).
    netlist.add_block(
        Block(name="u_bus", logic_terms=380, ff_bits=220, levels=3,
              registered_output=False)
    )
    netlist.add_block(
        Block(name="u_periph", logic_terms=520, ff_bits=610, carry_bits=24, levels=2)
    )

    netlist.connect("u_cpu", "u_bus", width=70, combinational=True)
    netlist.connect("u_bus", "u_imem", width=34, combinational=True)
    netlist.connect("u_bus", "u_dmem", width=34, combinational=True)
    netlist.connect("u_imem", "u_cpu", width=32)
    netlist.connect("u_dmem", "u_cpu", width=32)
    netlist.connect("u_bus", "u_periph", width=34)
    netlist.connect("u_periph", "u_cpu", width=33)
    if ext_m and fast_mul:
        netlist.connect("u_cpu", "u_muldiv", width=65)
        netlist.connect("u_muldiv", "u_cpu", width=32)
    return netlist


def generator() -> DesignGenerator:
    """Neorv32 generator — memory sizes as power-of-two exponents 12..16."""
    return DesignGenerator(
        name="neorv32",
        top=TOP,
        language=HdlLanguage.VHDL,
        emit=lambda: SOURCE,
        model=build_netlist,
        params=(
            ParamInfo("MEM_INT_IMEM_SIZE", 12, 16, power_of_two=True),
            ParamInfo("MEM_INT_DMEM_SIZE", 12, 16, power_of_two=True),
        ),
        description="NEORV32 RISC-V processor top",
    )
