"""Common machinery for case-study design generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.hdl.ast import HdlLanguage, Module
from repro.hdl.frontend import parse_source
from repro.netlist import Netlist
from repro.synth.elaborate import register_model

__all__ = ["ParamInfo", "DesignGenerator"]


@dataclass(frozen=True)
class ParamInfo:
    """Canonical exploration info for one parameter (from the paper's setup).

    ``low``/``high`` bound the explored range; ``power_of_two`` marks
    parameters the paper restricts to powers of two (the exponent then
    becomes the DSE variable, and ``low``/``high`` are *exponents*).
    """

    name: str
    low: int
    high: int
    power_of_two: bool = False

    def values(self) -> list[int]:
        if self.power_of_two:
            return [2**e for e in range(self.low, self.high + 1)]
        return list(range(self.low, self.high + 1))

    def cardinality(self) -> int:
        return self.high - self.low + 1


@dataclass(frozen=True)
class DesignGenerator:
    """A case-study design: source emitter + architectural model + ranges."""

    name: str                      # human name, e.g. "corundum-cqm"
    top: str                       # top module name in the emitted source
    language: HdlLanguage
    emit: Callable[[], str]        # HDL source text
    model: Callable[[Module, Mapping[str, int]], Netlist]
    params: tuple[ParamInfo, ...]
    description: str = ""

    def __post_init__(self) -> None:
        # Installing the model at construction keeps usage to two steps:
        # build the generator, hand its source to the tool.
        register_model(self.top, self.model, description=self.description)

    def source(self) -> str:
        return self.emit()

    def module(self) -> Module:
        """Parse the emitted source and return the top module."""
        modules = parse_source(self.source(), self.language)
        for m in modules:
            if m.name.lower() == self.top.lower():
                return m
        raise LookupError(f"generator {self.name!r}: top {self.top!r} not in emitted source")

    def param(self, name: str) -> ParamInfo:
        for p in self.params:
            if p.name.lower() == name.lower():
                return p
        raise KeyError(f"design {self.name!r} has no explored parameter {name!r}")

    def default_overrides(self) -> dict[str, int]:
        """Midpoint of each explored range (a sane single-point default)."""
        out: dict[str, int] = {}
        for p in self.params:
            mid = (p.low + p.high) // 2
            out[p.name] = 2**mid if p.power_of_two else mid
        return out
