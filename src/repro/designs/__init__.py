"""The paper's four case-study designs, as parameterized RTL generators.

Each module here mirrors one of the paper's Section IV case studies:

- :mod:`repro.designs.fifo_sv` — the SystemVerilog FIFO submodule of the
  cv32e40p RISC-V core (Section IV-A, the approximation-model study);
- :mod:`repro.designs.corundum_cqm` — Corundum's Verilog completion queue
  manager (Section IV-B, Table I / Fig. 4);
- :mod:`repro.designs.neorv32` — the VHDL Neorv32 RISC-V top with
  instruction/data memory size generics (Section IV-C, Fig. 5);
- :mod:`repro.designs.tirex` — the VHDL TiReX regular-expression DSA with
  datapath and memory parameters (Section IV-D, Figs. 6/7, Table II).

A generator emits genuine HDL source text (consumed by our own parsers, so
the full parse→box→evaluate path is exercised) and registers an
*architectural model* with the elaborator that shapes the block netlist the
way the real microarchitecture scales with its parameters.  Resource
anchors are grounded in public figures for each IP; DESIGN.md records the
calibration.
"""

from repro.designs.base import DesignGenerator, ParamInfo
from repro.designs import fifo_sv, corundum_cqm, cv32e40p, neorv32, tirex
from repro.designs.library import all_designs, get_design

__all__ = [
    "DesignGenerator",
    "ParamInfo",
    "fifo_sv",
    "corundum_cqm",
    "cv32e40p",
    "neorv32",
    "tirex",
    "all_designs",
    "get_design",
]
