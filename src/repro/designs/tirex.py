"""TiReX case study (VHDL) — paper Section IV-D.

TiReX is a tiled regular-expression matching architecture.  The paper
constrains its two datapath parameters into a single parallelism knob
``NCluster``, and additionally explores the instruction memory, data
memory, and context-switch stack sizes — all powers of two — on both a
Zynq UltraScale+ ZU3EG (16 nm) and the Kintex-7 XC7K70T (28 nm).

Reported shape (Figs. 6/7, Table II): every non-dominated configuration has
``NCluster = 1`` (more clusters cost area *and* frequency with no modeled
benefit metric, so they are dominated); small memories dominate; the ZU3EG
reaches ~550 MHz where the XC7K70T reaches ~190 MHz on similar
configurations; the newer part yields fewer non-dominated points (4 vs 8).

Architectural model: each cluster is a set of parallel matching engines
with a wide instruction bus; cluster count widens instruction distribution
(deeper fan-out levels ⇒ lower Fmax) and multiplies engine area.  Stack and
memories map to BRAM once past the distributed threshold.
"""

from __future__ import annotations

from typing import Mapping

from repro.designs.base import DesignGenerator, ParamInfo
from repro.hdl.ast import HdlLanguage, Module
from repro.netlist import Block, Netlist

__all__ = ["generator", "SOURCE", "TOP"]

TOP = "tirex_top"

SOURCE = """\
-- TiReX: Tiled Regular Expression matching architecture (interface subset).
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity tirex_top is
  generic (
    NCLUSTER        : positive := 1;    -- core parallelism (clusters)
    STACK_SIZE      : positive := 16;   -- context-switch stack entries
    INSTR_MEM_SIZE  : positive := 8;    -- instruction memory (K-entries)
    DATA_MEM_SIZE   : positive := 8     -- data memory (K-entries)
  );
  port (
    clk      : in  std_logic;
    rst      : in  std_logic;
    start    : in  std_logic;
    char_i   : in  std_logic_vector(7 downto 0);
    valid_i  : in  std_logic;
    ref_i    : in  std_logic_vector(15 downto 0);
    match_o  : out std_logic;
    done_o   : out std_logic;
    result_o : out std_logic_vector(15 downto 0)
  );
end entity tirex_top;

architecture tirex_rtl of tirex_top is
begin
  -- tiled engine array elided; the DSE consumes the interface
end architecture tirex_rtl;
"""

_INSTR_WIDTH_PER_CLUSTER = 56   # bits of instruction consumed per cluster
_ENGINE_LUTS = 540              # one cluster's matching engines
_ENGINE_FFS = 410


def _log2(n: int) -> int:
    return max(1, (max(2, n) - 1).bit_length())


def build_netlist(module: Module, env: Mapping[str, int]) -> Netlist:
    nclusters = max(1, env.get("NCLUSTER", 1))
    stack = max(2, env.get("STACK_SIZE", 16))
    imem_k = max(1, env.get("INSTR_MEM_SIZE", 8))
    dmem_k = max(1, env.get("DATA_MEM_SIZE", 8))

    instr_width = _INSTR_WIDTH_PER_CLUSTER * nclusters
    netlist = Netlist(top=module.name)

    # Control unit with the context-switch stack.
    stack_bits = stack * 48
    netlist.add_block(
        Block(
            name="u_ctrl",
            logic_terms=160 + _log2(stack) * 10,
            ff_bits=96,
            carry_bits=16,
            mem_bits=stack_bits,
            mem_width=48,
            levels=3,
            registered_output=False,
            through_memory=stack_bits > 1024,
        )
    )

    # Instruction memory: K-entries × instruction width.
    imem_bits = imem_k * 1024 * instr_width
    netlist.add_block(
        Block(
            name="u_imem",
            logic_terms=_log2(imem_k * 1024) * 4,
            ff_bits=instr_width,
            mem_bits=imem_bits,
            mem_width=instr_width,
            levels=2,
            through_memory=True,
        )
    )

    # Data memory: K-entries × 32.
    dmem_bits = dmem_k * 1024 * 32
    netlist.add_block(
        Block(
            name="u_dmem",
            logic_terms=_log2(dmem_k * 1024) * 4,
            ff_bits=34,
            mem_bits=dmem_bits,
            mem_width=32,
            levels=2,
            through_memory=True,
        )
    )

    # Instruction dispatch: fans the fetched word out to all clusters.
    netlist.add_block(
        Block(
            name="u_dispatch",
            logic_terms=instr_width + nclusters * 24,
            ff_bits=instr_width,
            levels=1 + _log2(nclusters + 1),  # fan-out tree deepens
        )
    )

    # Matching engine clusters.  Multi-cluster configurations pay a real
    # timing price: match vectors from neighbouring clusters merge into each
    # engine's state update, deepening the per-cluster critical path — this
    # is what makes every Table II non-dominated configuration NCluster = 1.
    cluster_levels = 4 + 3 * (nclusters.bit_length() - 1)
    for c in range(nclusters):
        netlist.add_block(
            Block(
                name=f"u_cluster{c}",
                logic_terms=_ENGINE_LUTS,
                ff_bits=_ENGINE_FFS,
                carry_bits=24,
                levels=cluster_levels,
                registered_output=False,
            )
        )

    # Result reduction across clusters.
    netlist.add_block(
        Block(
            name="u_reduce",
            logic_terms=24 + nclusters * 10,
            ff_bits=20,
            levels=1 + _log2(nclusters + 1),
        )
    )

    netlist.connect("u_ctrl", "u_imem", width=_log2(imem_k * 1024), combinational=True)
    netlist.connect("u_imem", "u_dispatch", width=instr_width, combinational=True)
    for c in range(nclusters):
        name = f"u_cluster{c}"
        netlist.connect("u_dispatch", name, width=_INSTR_WIDTH_PER_CLUSTER,
                        combinational=True)
        netlist.connect(name, "u_reduce", width=10, combinational=True)
    netlist.connect("u_reduce", "u_ctrl", width=4)
    netlist.connect("u_dmem", "u_ctrl", width=32)
    netlist.connect("u_reduce", "u_dmem", width=34)
    return netlist


def generator() -> DesignGenerator:
    """TiReX generator — paper exploration ranges (powers of two)."""
    from repro.perf import StaticThroughputModel, register_performance_model

    # Static performance model (a paper future-work feature): each cluster
    # consumes one input character per cycle; context switches drain the
    # stack, amortized per 4K-character batch.  With this model registered,
    # a `performance` objective lets multi-cluster configurations trade
    # their area/frequency cost against real throughput.
    register_performance_model(
        TOP,
        StaticThroughputModel(
            items_per_cycle=lambda p: float(p.get("NCLUSTER", 1)),
            startup_cycles=24,
            batch=4096,
            description="matched characters per second",
        ),
    )
    return DesignGenerator(
        name="tirex",
        top=TOP,
        language=HdlLanguage.VHDL,
        emit=lambda: SOURCE,
        model=build_netlist,
        params=(
            ParamInfo("NCLUSTER", 0, 3, power_of_two=True),        # 1..8
            ParamInfo("STACK_SIZE", 0, 8, power_of_two=True),      # 1..256
            ParamInfo("INSTR_MEM_SIZE", 3, 6, power_of_two=True),  # 8K..64K entries
            ParamInfo("DATA_MEM_SIZE", 3, 6, power_of_two=True),
        ),
        description="TiReX tiled regular-expression matching architecture",
    )
