"""Registry of built-in case-study designs."""

from __future__ import annotations

from repro.designs import corundum_cqm, cv32e40p, fifo_sv, neorv32, tirex
from repro.designs.base import DesignGenerator

__all__ = ["all_designs", "get_design"]

_FACTORIES = {
    "cv32e40p-fifo": fifo_sv.generator,
    "cv32e40p": cv32e40p.generator,
    "corundum-cqm": corundum_cqm.generator,
    "neorv32": neorv32.generator,
    "tirex": tirex.generator,
}


def all_designs() -> dict[str, DesignGenerator]:
    """Instantiate every built-in design generator (registers its model)."""
    return {name: factory() for name, factory in _FACTORIES.items()}


def get_design(name: str) -> DesignGenerator:
    """Look up a built-in design by name (also accepts the top-module name)."""
    key = name.lower()
    if key in _FACTORIES:
        return _FACTORIES[key]()
    for factory in _FACTORIES.values():
        gen = factory()
        if gen.top.lower() == key:
            return gen
    known = ", ".join(sorted(_FACTORIES))
    raise KeyError(f"unknown design {name!r}; built-ins: {known}")
