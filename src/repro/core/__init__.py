"""Dovado core: the framework users drive.

Design automation mode (Section III-A): :class:`PointEvaluator` runs one
configuration through parse → box → TCL → VEDA → report scraping and
returns the metrics.  DSE mode (Section III-B): :class:`DseSession` wraps
the evaluator in a multi-objective integer problem, optionally behind the
Nadaraya-Watson control model (Section III-C), and solves it with NSGA-II.
"""

from repro.core.spaces import (
    BoolParam,
    IntRange,
    ParameterSpace,
    PowerOfTwoRange,
)
from repro.core.point import EvaluatedPoint
from repro.core.metrics import MetricSpec, default_metrics, metrics_from_reports
from repro.core.evaluate import PointEvaluator
from repro.core.fitness import ApproximateFitness
from repro.core.session import DseResult, DseSession
from repro.core.pareto import pareto_points
from repro.core.sweep import SweepResult, grid, run_sweep, zip_points
from repro.core.project import load_project, save_project

__all__ = [
    "BoolParam",
    "IntRange",
    "ParameterSpace",
    "PowerOfTwoRange",
    "EvaluatedPoint",
    "MetricSpec",
    "default_metrics",
    "metrics_from_reports",
    "PointEvaluator",
    "ApproximateFitness",
    "DseResult",
    "DseSession",
    "pareto_points",
    "SweepResult",
    "grid",
    "run_sweep",
    "zip_points",
    "load_project",
    "save_project",
]
