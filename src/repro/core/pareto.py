"""Pareto-set extraction into user-facing evaluated points."""

from __future__ import annotations

import numpy as np

from repro.core.point import EvaluatedPoint
from repro.core.spaces import ParameterSpace
from repro.moo.nds import non_dominated_mask
from repro.moo.population import Population
from repro.moo.problem import IntegerProblem

__all__ = ["pareto_points"]


def pareto_points(
    problem: IntegerProblem,
    space: ParameterSpace,
    archive: Population,
    metric_names: tuple[str, ...],
) -> list[EvaluatedPoint]:
    """Decode the archive's non-dominated subset into evaluated points.

    Points are sorted by the first metric column (raw units) for stable,
    readable tables.
    """
    if archive.F is None or len(archive) == 0:
        return []
    mask = non_dominated_mask(archive.F)
    X = archive.X[mask]
    F_raw = problem.raw_from_minimized(archive.F[mask])
    order = np.argsort(F_raw[:, 0], kind="stable")
    out: list[EvaluatedPoint] = []
    for i in order:
        out.append(
            EvaluatedPoint(
                parameters=space.decode(X[i]),
                metrics={
                    name: float(F_raw[i, j]) for j, name in enumerate(metric_names)
                },
                source="archive",
            )
        )
    return out
