"""Metric specifications and report-based extraction.

A :class:`MetricSpec` names a metric and its optimization sense; metric
values come from *parsing the tool's report text* (exactly how Dovado
scrapes Vivado), via :func:`metrics_from_reports`: utilization metrics
(LUT/FF/BRAM/…) from the utilization report, and maximum frequency from
the timing report through Eq. (1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import ResourceKind
from repro.flow.reports import parse_timing_report, parse_utilization_report
from repro.moo.problem import Objective, Sense
from repro.util.units import fmax_from_wns

__all__ = [
    "MetricSpec", "default_metrics", "metrics_from_reports",
    "FREQUENCY", "PERFORMANCE", "POWER",
]

FREQUENCY = "frequency"
PERFORMANCE = "performance"
POWER = "power"
_DERIVED = (FREQUENCY, PERFORMANCE, POWER)


@dataclass(frozen=True)
class MetricSpec:
    """One optimization metric: a resource kind, ``"frequency"`` (MHz),
    ``"performance"`` (work/s from a registered static performance model —
    see :mod:`repro.perf`), or ``"power"`` (total mW from the vectorless
    estimator — see :mod:`repro.flow.power`)."""

    name: str
    sense: Sense

    def __post_init__(self) -> None:
        if self.name.lower() not in _DERIVED:
            ResourceKind(self.name.upper())  # raises ValueError on unknown kind

    @classmethod
    def minimize(cls, name: str) -> "MetricSpec":
        return cls(name, Sense.MINIMIZE)

    @classmethod
    def maximize(cls, name: str) -> "MetricSpec":
        return cls(name, Sense.MAXIMIZE)

    def canonical_name(self) -> str:
        lowered = self.name.lower()
        if lowered in _DERIVED:
            return lowered
        return self.name.upper()

    def as_objective(self) -> Objective:
        return Objective(self.canonical_name(), self.sense)


def default_metrics() -> list[MetricSpec]:
    """The paper's usual figures of merit: LUT down, frequency up."""
    return [MetricSpec.minimize("LUT"), MetricSpec.maximize(FREQUENCY)]


def metrics_from_reports(
    util_text: str, timing_text: str, specs: list[MetricSpec]
) -> dict[str, float]:
    """Extract the requested metrics from rendered report text.

    ``performance`` cannot be scraped from tool reports; the evaluator
    fills it afterwards via the registered performance model.  Here it is
    emitted as NaN so the key ordering stays stable.
    """
    utilization = parse_utilization_report(util_text)
    timing = parse_timing_report(timing_text)
    out: dict[str, float] = {}
    for spec in specs:
        key = spec.canonical_name()
        if key == FREQUENCY:
            out[key] = fmax_from_wns(
                float(timing["requirement_ns"]), float(timing["wns_ns"])
            )
        elif key in (PERFORMANCE, POWER):
            out[key] = float("nan")
        else:
            out[key] = float(utilization.used.get(ResourceKind(key)))
    return out


def report_fmax(timing_text: str) -> float:
    """Fmax (MHz) from a timing report, independent of the metric list."""
    timing = parse_timing_report(timing_text)
    return fmax_from_wns(float(timing["requirement_ns"]), float(timing["wns_ns"]))
