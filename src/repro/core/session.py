"""The DSE session — Dovado's top-level user object.

Construct with a design (a case-study generator or raw HDL), a parameter
space, a target part, and the optimization metrics; then either

- :meth:`DseSession.evaluate_points` — design *automation* mode: evaluate
  an explicit list of configurations; or
- :meth:`DseSession.explore` — *DSE* mode: NSGA-II over the space,
  optionally behind the approximation model, under generation and/or
  soft-deadline budgets, returning the non-dominated set.

Sessions persist to JSON/CSV via :meth:`DseResult.save`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.evaluate import PointEvaluator
from repro.core.fitness import ApproximateFitness, DseProblem
from repro.core.metrics import MetricSpec, default_metrics
from repro.core.pareto import pareto_points
from repro.core.point import EvaluatedPoint
from repro.core.spaces import ParameterSpace
from repro.directives import DirectiveSet
from repro.flow.vivado_sim import Fidelity, FlowStep
from repro.moo import NSGA2, Termination
from repro.moo.nsga2 import NSGA2Result
from repro.observe import GenerationStat, current_telemetry, span as observe_span
from repro.util.io import save_csv, save_json

__all__ = ["DseSession", "DseResult"]


@dataclass
class DseResult:
    """Outcome of one exploration."""

    pareto: list[EvaluatedPoint]
    archive_size: int
    generations: int
    evaluations: int
    tool_runs: int
    simulated_seconds: float
    stats: dict[str, float | int]
    mse_trace: list[tuple[int, float]] = field(default_factory=list)
    raw: NSGA2Result | None = None

    def save(self, directory: str | Path, name: str = "dse") -> Path:
        directory = Path(directory)
        payload = {
            "pareto": [p.as_row() for p in self.pareto],
            "archive_size": self.archive_size,
            "generations": self.generations,
            "evaluations": self.evaluations,
            "tool_runs": self.tool_runs,
            "simulated_seconds": self.simulated_seconds,
            "stats": self.stats,
            "mse_trace": self.mse_trace,
        }
        save_json(directory / f"{name}.json", payload)
        if self.pareto:
            fields = list(self.pareto[0].as_row().keys())
            save_csv(
                directory / f"{name}_pareto.csv",
                fields,
                (p.as_row() for p in self.pareto),
            )
        return directory / f"{name}.json"


class DseSession:
    """One design + device + metric setup, ready to evaluate or explore."""

    def __init__(
        self,
        design=None,
        *,
        source: str | None = None,
        language: str | None = None,
        top: str | None = None,
        space: ParameterSpace | None = None,
        part: str = "XC7K70T",
        metrics: Sequence[MetricSpec] | None = None,
        target_period_ns: float = 1.0,
        step: FlowStep = FlowStep.IMPLEMENTATION,
        directives: DirectiveSet | None = None,
        use_model: bool = True,
        pretrain_size: int = 100,
        incremental: bool = False,
        seed: int = 0,
        workers: int = 0,
        refit_every: int = 1,
        refit_gamma_drift: float | None = None,
        result_store=None,
        fidelity_gate: bool = False,
        gate_risk: float = 0.05,
        gate_fidelity: str = "synth-estimate",
        gate_min_calibration: int = 5,
        gate_trickle_every: int = 8,
        gate_static_priors: bool = False,
        drc_netlist: bool = False,
    ) -> None:
        design_name = None
        if design is not None:
            source = design.source()
            language = str(design.language)
            top = design.top
            design_name = getattr(design, "name", None)
            if space is None:
                space = ParameterSpace.from_design(design)
        if source is None or language is None or top is None:
            raise ValueError("provide either `design` or (source, language, top)")
        if space is None:
            raise ValueError("a ParameterSpace is required for raw-source sessions")
        self.space = space
        self.seed = seed
        self.evaluator = PointEvaluator(
            source=source,
            language=language,
            top=top,
            part=part,
            target_period_ns=target_period_ns,
            step=step,
            directives=directives,
            metrics=list(metrics) if metrics is not None else default_metrics(),
            seed=seed,
            incremental=incremental,
        )
        from repro.estimation import RefitPolicy

        self.fitness = ApproximateFitness(
            evaluator=self.evaluator,
            space=space,
            use_model=use_model,
            pretrain_size=pretrain_size,
            seed=seed,
            workers=workers,
            design_name=design_name,
            refit_policy=RefitPolicy(
                every=refit_every, gamma_drift=refit_gamma_drift
            ),
            result_store=result_store,
            fidelity_gate=fidelity_gate,
            gate_risk=gate_risk,
            gate_fidelity=Fidelity(gate_fidelity),
            gate_min_calibration=gate_min_calibration,
            gate_trickle_every=gate_trickle_every,
            gate_static_priors=gate_static_priors,
            drc_netlist=drc_netlist,
        )
        self._pretrained = False
        self.last_algorithm_choice = None  # set by explore(algorithm="auto")

    # ------------------------------------------------------------------

    def apply_static_pruning(self):
        """Opt-in static space pruning (the CLI's ``--prune-space``).

        Runs the dataflow engine's interval analysis and dependency graph
        over the session's module and space, then — when anything can be
        proved — drops dead dimensions and clips statically infeasible
        range ends.  The fitness adapter is rebuilt around the pruned
        space (model dataset included: its row layout is per-dimension),
        so call this *before* :meth:`explore`.

        Returns the :class:`repro.analysis.dataflow_rules.PruneReport`.
        """
        from repro.analysis.dataflow_rules import prune_space

        report = prune_space(
            self.evaluator.module,
            self.space,
            sources=(
                (self.evaluator.source_text, str(self.evaluator.language)),
            ),
        )
        if report.changed:
            self.space = report.space
            old = self.fitness
            old.close()
            self.fitness = ApproximateFitness(
                evaluator=self.evaluator,
                space=report.space,
                use_model=old.use_model,
                pretrain_size=old.pretrain_size,
                min_points_to_estimate=old.min_points_to_estimate,
                seed=self.seed,
                workers=old.workers,
                design_name=old.design_name,
                refit_policy=old.refit_policy,
                result_store=old.result_store,
                fidelity_gate=old.fidelity_gate_enabled,
                gate_risk=old.gate_risk,
                gate_fidelity=old.gate_fidelity,
                gate_min_calibration=old.gate_min_calibration,
                gate_trickle_every=old.gate_trickle_every,
                gate_static_priors=old.gate_static_priors,
                drc_netlist=old.drc_netlist,
            )
            self._pretrained = False
        return report

    # ------------------------------------------------------------------

    def close(self) -> None:
        """Release the evaluation worker pool, if one was started."""
        self.fitness.close()

    def __enter__(self) -> "DseSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def evaluate_points(
        self, points: Sequence[Mapping[str, int]]
    ) -> list[EvaluatedPoint]:
        """Design automation mode: exact evaluation of given configurations."""
        return [self.evaluator.evaluate(p) for p in points]

    def submit_points(self, points: Sequence[Mapping[str, int]]):
        """Design automation mode, asynchronously.

        Submits the configurations to the batch evaluator (worker pool,
        memo, in-flight dedup, and — when the session was built with
        ``result_store`` — the persistent store) and returns a
        :class:`repro.core.parallel.PendingBatch` immediately.  Several
        batches may be in flight at once; collect each with
        ``.results()``, in submission order, to get points in request
        order.  Results are bitwise identical to
        :meth:`evaluate_points`'s metrics for fresh configurations.
        """
        return self.fitness._parallel_evaluator().submit_many(list(points))

    def explore(
        self,
        generations: int = 20,
        population: int = 24,
        soft_deadline_s: float | None = None,
        pretrain: bool = True,
        algorithm: str = "nsga2",
        workers: int | None = None,
    ) -> DseResult:
        """DSE mode: search the space; returns the non-dominated set.

        ``soft_deadline_s`` is a budget in *simulated tool seconds* — the
        unit the paper's four-hour deadline is expressed in.

        ``algorithm`` selects the solver: ``"nsga2"`` (the paper's
        choice), ``"mosa"`` (multi-objective simulated annealing),
        ``"exhaustive"`` (enumerate small spaces), or ``"auto"`` — the
        run-time chooser from :mod:`repro.moo.portfolio`, which consults
        the synthetic dataset's ruggedness when the approximation model is
        active (the paper's envisioned future-work feature).

        ``workers`` (when given) overrides the session's tool fan-out:
        with ``workers > 1`` population evaluation runs on a persistent
        process pool that stays warm across generations — and across
        repeated ``explore`` calls — until :meth:`close`.  Results are
        bitwise identical to the serial loop (the fan-out only engages
        for pure, non-incremental evaluators).
        """
        with observe_span("dse.explore") as sp:
            before = self.fitness.simulated_seconds
            result = self._explore_impl(
                generations=generations,
                population=population,
                soft_deadline_s=soft_deadline_s,
                pretrain=pretrain,
                algorithm=algorithm,
                workers=workers,
            )
            sp.charge(self.fitness.simulated_seconds - before)
        return result

    def _explore_impl(
        self,
        generations: int,
        population: int,
        soft_deadline_s: float | None,
        pretrain: bool,
        algorithm: str,
        workers: int | None,
    ) -> DseResult:
        if workers is not None:
            self.fitness.set_workers(workers)
        if pretrain and not self._pretrained:
            with observe_span("dse.pretrain") as sp:
                before = self.fitness.simulated_seconds
                self.fitness.pretrain()
                sp.charge(self.fitness.simulated_seconds - before)
            self._pretrained = True

        problem = DseProblem(self.fitness)

        if algorithm == "auto":
            from repro.moo.portfolio import recommend_algorithm

            dataset = (
                self.fitness.control.dataset if self.fitness.use_model else None
            )
            choice = recommend_algorithm(problem, dataset)
            self.last_algorithm_choice = choice
            algorithm = choice.name if choice.name != "random" else "nsga2"

        termination = Termination(
            n_gen=generations if algorithm == "nsga2" else None,
            n_eval=None if algorithm == "nsga2" else generations * population,
            deadline=None,
        )
        if soft_deadline_s is not None:
            from repro.util.timing import SoftDeadline

            termination.deadline = SoftDeadline(budget_s=soft_deadline_s)
            # Charge what pretraining already consumed.
            termination.deadline.charge(self.fitness.simulated_seconds)

        seconds_holder = {"prev": self.fitness.simulated_seconds}

        def simulated_cost(_: int) -> float:
            now = self.fitness.simulated_seconds
            delta = now - seconds_holder["prev"]
            seconds_holder["prev"] = now
            return max(0.0, delta)

        if algorithm == "exhaustive":
            from repro.moo.baselines import exhaustive_search

            archive = exhaustive_search(problem)
            raw = None
            gens = 1
            evals = len(archive)
        elif algorithm == "mosa":
            from repro.moo.mosa import MOSA

            mosa_result = MOSA().minimize(problem, termination, seed=self.seed)
            archive = mosa_result.archive
            raw = None
            gens = 0
            evals = mosa_result.evaluations
        elif algorithm == "spea2":
            from repro.moo.spea2 import SPEA2

            spea_result = SPEA2(
                pop_size=population, archive_size=population
            ).minimize(problem, termination, seed=self.seed)
            archive = spea_result.archive
            raw = None
            gens = spea_result.generations
            evals = spea_result.evaluations
        elif algorithm == "nsga2":
            nsga = NSGA2(pop_size=population)
            tel = current_telemetry()
            on_gen = None
            if tel is not None:
                from repro.moo.indicators import hypervolume
                from repro.moo.nds import non_dominated_mask

                def on_gen(gen: int, pop) -> None:
                    mask = non_dominated_mask(pop.F)
                    # Per-generation reference: worst corner of the current
                    # population, nudged so boundary points still count.
                    ref = pop.F.max(axis=0) + 1e-9
                    tel.note_generation(
                        GenerationStat(
                            generation=gen,
                            front_size=int(mask.sum()),
                            evaluations=termination.evaluations,
                            hypervolume=float(
                                hypervolume(pop.F[mask], ref, samples=20_000)
                            ),
                            budget_remaining_s=(
                                termination.deadline.remaining()
                                if termination.deadline is not None
                                else None
                            ),
                        )
                    )

            charge_generations = soft_deadline_s is not None or tel is not None
            result = nsga.minimize(
                problem,
                termination,
                seed=self.seed,
                on_generation=on_gen,
                simulated_cost=simulated_cost if charge_generations else None,
            )
            archive = result.archive
            raw = result
            gens = result.generations
            evals = result.evaluations
        else:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                "use nsga2, spea2, mosa, exhaustive, or auto"
            )

        # Promote any speculatively-skipped archive members to full fidelity
        # before the front is extracted: the reported Pareto set (and the
        # regret the benchmarks measure) is always full-route truth.
        self.fitness.promote_archive(archive)
        pareto = pareto_points(
            problem, self.space, archive, self.evaluator.metric_names()
        )
        return DseResult(
            pareto=pareto,
            archive_size=len(archive),
            generations=gens,
            evaluations=evals,
            tool_runs=self.fitness.tool_runs(),
            simulated_seconds=self.fitness.simulated_seconds,
            stats=self.fitness.stats(),
            mse_trace=list(self.fitness.mse_trace),
            raw=raw,
        )
