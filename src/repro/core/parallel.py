"""Parallel batch evaluation of design points.

Real Dovado runs are embarrassingly parallel across design points — each
Vivado invocation is an independent subprocess — and VEDA inherits that
structure: a run is a pure function of (source, top, part, directives,
parameters, seed), so evaluating a batch across worker processes is
*bitwise equivalent* to the serial loop.  The QoR noise being keyed on run
content (not on generator state) is what makes this safe; see
:mod:`repro.util.rng`.

The evaluator is built for *reuse across batches*: the process pool starts
lazily on the first multi-worker batch and then stays alive for the
evaluator's lifetime, so each worker parses the evaluator spec and builds
its :class:`~repro.core.evaluate.PointEvaluator` exactly once — per-worker
tool caches stay warm across NSGA-II generations instead of being thrown
away per batch.  Call :meth:`ParallelPointEvaluator.close` (or use the
evaluator as a context manager) to shut the pool down.

A cross-batch memo table guarantees a configuration is never dispatched
twice: repeats — within one batch or in a later generation — replay the
memoized metrics as cache-priced answers (``source="cache"``, zero
simulated seconds), exactly what the serial reference produces when the
shared tool session answers a repeated run from its result cache.

Workers are initialized once with a picklable :class:`EvaluatorSpec` and
rebuild their own evaluator; built-in case-study designs are re-registered
by name inside each worker so architectural models exist under ``spawn``
start methods too.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.gate import PreflightGate
from repro.core.evaluate import PointEvaluator
from repro.core.metrics import MetricSpec
from repro.core.point import EvaluatedPoint
from repro.directives import DirectiveSet
from repro.errors import ReproError
from repro.flow.vivado_sim import FlowStep
from repro.moo.problem import Sense
from repro.observe import current_telemetry, enable_telemetry

__all__ = [
    "EvaluatorSpec",
    "EvaluationFailure",
    "ParallelPointEvaluator",
    "RemoteEvaluationError",
]


class RemoteEvaluationError(ReproError):
    """A worker-side evaluation failed (carries the original error name)."""

    def __init__(self, original_type: str, message: str) -> None:
        super().__init__(f"{original_type}: {message}")
        self.original_type = original_type


@dataclass(frozen=True)
class EvaluationFailure:
    """Picklable record of a worker-side :class:`ReproError`.

    Tool exceptions carry constructor signatures that do not survive
    pickling, so workers ship this marker instead; callers that need the
    serial behaviour re-raise via :meth:`to_error`.

    ``simulated_seconds`` is the partial tool time the failed run charged
    before raising (0 for DRC rejections and for memo replays) — the cost
    accounting layer charges it against the DSE soft deadline.
    """

    original_type: str
    message: str
    simulated_seconds: float = 0.0

    def to_error(self) -> RemoteEvaluationError:
        return RemoteEvaluationError(self.original_type, self.message)


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything a worker needs to rebuild the evaluator (all picklable)."""

    source: str
    language: str
    top: str
    part: str = "XC7K70T"
    target_period_ns: float = 1.0
    step: str = "implementation"
    synth_directive: str = "Default"
    impl_directive: str = "Default"
    metrics: tuple[tuple[str, str], ...] = (("LUT", "min"), ("frequency", "max"))
    boxed: bool = True
    seed: int = 0
    design_name: str | None = None  # built-in design to re-register in workers
    incremental: bool = False

    @classmethod
    def from_evaluator(
        cls, evaluator: PointEvaluator, design_name: str | None = None
    ) -> "EvaluatorSpec":
        return cls(
            source=evaluator.source_text,
            language=str(evaluator.language),
            top=evaluator.module.name,
            part=evaluator.part,
            target_period_ns=evaluator.target_period_ns,
            step=str(evaluator.step),
            synth_directive=str(evaluator.directives.synth),
            impl_directive=str(evaluator.directives.impl),
            metrics=tuple(
                (s.canonical_name(), str(s.sense)) for s in evaluator.metrics
            ),
            boxed=evaluator.boxed,
            seed=evaluator.seed,
            design_name=design_name,
            incremental=getattr(evaluator, "incremental", False),
        )

    def build(self) -> PointEvaluator:
        if self.design_name:
            from repro.designs import get_design

            get_design(self.design_name)  # side effect: registers models
        return PointEvaluator(
            source=self.source,
            language=self.language,
            top=self.top,
            part=self.part,
            target_period_ns=self.target_period_ns,
            step=FlowStep(self.step),
            directives=DirectiveSet.parse(self.synth_directive, self.impl_directive),
            metrics=[
                MetricSpec(name, Sense(sense)) for name, sense in self.metrics
            ],
            boxed=self.boxed,
            seed=self.seed,
            incremental=self.incremental,
        )


# Per-worker evaluator (module globals: one build per worker process).
_WORKER: PointEvaluator | None = None
_INIT_CALLS = 0


def _init_worker(spec: EvaluatorSpec, telemetry_enabled: bool = False) -> None:
    global _WORKER, _INIT_CALLS
    _INIT_CALLS += 1
    if telemetry_enabled:
        # The worker keeps a local bundle; every task drains it into the
        # result tuple so the parent can merge spans/records/counters.
        enable_telemetry()
    _WORKER = spec.build()


def _evaluate_one(params: dict[str, int]) -> EvaluatedPoint:
    assert _WORKER is not None, "worker not initialized"
    return _WORKER.evaluate(params)


def _evaluate_one_safe(
    params: dict[str, int],
) -> tuple[EvaluatedPoint | EvaluationFailure, dict | None]:
    try:
        result: EvaluatedPoint | EvaluationFailure = _evaluate_one(params)
    except ReproError as exc:
        assert _WORKER is not None
        result = EvaluationFailure(
            type(exc).__name__,
            str(exc),
            simulated_seconds=_WORKER.last_failure_seconds,
        )
    tel = current_telemetry()
    delta = tel.drain_delta() if tel is not None else None
    return result, delta


def _worker_probe(_: int) -> tuple[int, int]:
    """Debug task: (pid, initializer-call count) for the executing worker."""
    return os.getpid(), _INIT_CALLS


def _freeze(params: Mapping[str, int]) -> tuple[tuple[str, int], ...]:
    return tuple(sorted((k.lower(), int(v)) for k, v in params.items()))


def _as_cache_hit(point: EvaluatedPoint) -> EvaluatedPoint:
    """A repeat of a memoized point, priced as the tool's cache answer."""
    return dataclasses.replace(point, source="cache", simulated_seconds=0.0)


@dataclass
class ParallelPointEvaluator:
    """Fan batches of configurations over a persistent process pool.

    With ``workers=0`` (or 1) batches run serially in-process — the
    reference behaviour parallel runs must reproduce exactly.  The pool
    (and the serial fallback evaluator) is created lazily and reused for
    every subsequent batch; ``close()`` / ``with`` releases it.

    ``memo`` is the cross-batch memo table keyed on the frozen parameter
    binding: first occurrences are dispatched, repeats replay the stored
    result as a cache-priced answer.  ``dispatched``/``memo_hits`` count
    the split for perf reporting.
    """

    spec: EvaluatorSpec
    workers: int = 0
    start_method: str | None = None
    _serial: PointEvaluator | None = field(default=None, init=False, repr=False)
    _pool: ProcessPoolExecutor | None = field(default=None, init=False, repr=False)
    memo: dict[tuple, EvaluatedPoint | EvaluationFailure] = field(
        default_factory=dict, init=False, repr=False
    )
    dispatched: int = field(default=0, init=False)
    memo_hits: int = field(default=0, init=False)
    drc_rejections: int = field(default=0, init=False)
    _gate: PreflightGate | None = field(default=None, init=False, repr=False)

    # -- lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            # Telemetry enablement is frozen at pool creation: workers
            # started with it off never collect (so a later enable in the
            # parent sees no worker records until the pool is rebuilt).
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.spec, current_telemetry() is not None),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; memo table survives)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelPointEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    # -- evaluation -----------------------------------------------------

    def gate(self) -> PreflightGate:
        """The driver-side DRC pre-flight gate (built lazily from the spec).

        Runs in the parent process so infeasible points are rejected before
        they are shipped to a worker: the verdict is memoized here as an
        :class:`EvaluationFailure` whose message is byte-identical to the
        error the serial evaluator's own gate raises.
        """
        if self._gate is None:
            from repro.hdl.ast import HdlLanguage
            from repro.hdl.frontend import parse_source

            modules = parse_source(self.spec.source, HdlLanguage(self.spec.language))
            matches = [m for m in modules if m.name.lower() == self.spec.top.lower()]
            if not matches:
                raise LookupError(f"top {self.spec.top!r} not found in spec source")
            self._gate = PreflightGate(matches[0], boxed=self.spec.boxed)
        return self._gate

    def evaluate_many(
        self,
        points: Sequence[Mapping[str, int]],
        on_error: str = "raise",
    ) -> list[EvaluatedPoint | EvaluationFailure]:
        """Evaluate a batch, reusing the pool and the cross-batch memo.

        ``on_error="raise"`` re-raises the first worker-side
        :class:`ReproError` (as a :class:`RemoteEvaluationError`);
        ``on_error="return"`` yields an :class:`EvaluationFailure` in that
        point's slot instead, so callers can apply their own penalty
        policy without losing the rest of the batch.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")

        keys = [_freeze(p) for p in points]
        fresh: dict[tuple, dict[str, int]] = {}
        first_occurrence: dict[tuple, int] = {}
        for i, (key, p) in enumerate(zip(keys, points)):
            if key not in self.memo and key not in fresh:
                fresh[key] = {k: int(v) for k, v in p.items()}
                first_occurrence[key] = i

        # DRC pre-flight: reject infeasible fresh points in the parent
        # process, before any worker dispatch.  The verdict is memoized so
        # repeats replay without re-checking, like any other failure.
        tel = current_telemetry()
        if fresh:
            gate = self.gate()
            for key in list(fresh):
                violation = gate.violation(fresh[key])
                if violation is not None:
                    self.memo[key] = EvaluationFailure(
                        type(violation).__name__, str(violation)
                    )
                    self.drc_rejections += 1
                    # Pre-dispatch rejects never reach a worker, so this
                    # layer owns their ledger record.
                    if tel is not None:
                        tel.ledger.append(
                            params=fresh[key],
                            outcome="drc",
                            charge=0.0,
                            error_type=type(violation).__name__,
                            origin="pool",
                        )
                    del fresh[key]

        if fresh:
            self.dispatched += len(fresh)
            if self.workers <= 1:
                if self._serial is None:
                    self._serial = self.spec.build()
                for key, params in fresh.items():
                    try:
                        # The in-process evaluator records its own ledger
                        # entries (it sees the parent's telemetry bundle).
                        self.memo[key] = self._serial.evaluate(params)
                    except ReproError as exc:
                        self.memo[key] = EvaluationFailure(
                            type(exc).__name__,
                            str(exc),
                            simulated_seconds=self._serial.last_failure_seconds,
                        )
            else:
                # map() yields in submission order, so merging deltas as
                # they stream in gives a deterministic merged record order.
                outs = self._ensure_pool().map(_evaluate_one_safe, fresh.values())
                for key, (res, delta) in zip(fresh.keys(), outs):
                    self.memo[key] = res
                    if delta is not None and tel is not None:
                        tel.merge_delta(delta, origin="worker")

        results: list[EvaluatedPoint | EvaluationFailure] = []
        for i, key in enumerate(keys):
            stored = self.memo[key]
            replay = first_occurrence.get(key) != i
            if replay:
                self.memo_hits += 1
                if tel is not None:
                    self._record_replay(tel, points[i], stored)
            if isinstance(stored, EvaluationFailure):
                if replay:
                    # A replayed failure spends no new tool time.
                    stored = dataclasses.replace(stored, simulated_seconds=0.0)
                if on_error == "raise":
                    raise stored.to_error()
                results.append(stored)
            else:
                results.append(_as_cache_hit(stored) if replay else stored)
        return results

    @staticmethod
    def _record_replay(
        tel, params: Mapping[str, int], stored: EvaluatedPoint | EvaluationFailure
    ) -> None:
        """Ledger record for a memo replay (zero charge — no tool touched)."""
        if isinstance(stored, EvaluationFailure):
            drc = stored.original_type == "DrcViolationError"
            tel.ledger.append(
                params=params,
                outcome="drc" if drc else "failed",
                charge=0.0,
                error_type=stored.original_type,
                origin="memo",
            )
        else:
            tel.ledger.append(
                params=params,
                outcome="cache",
                metrics=stored.metrics,
                charge=0.0,
                origin="memo",
            )

    # -- introspection --------------------------------------------------

    def worker_probes(self, samples: int | None = None) -> list[tuple[int, int]]:
        """(pid, initializer-call count) reported by pool workers.

        Dispatches ``samples`` probe tasks (default ``4 × workers``); task
        placement is up to the pool, so probes may not cover every worker,
        but any worker that answers reports how often it was initialized.
        Returns an empty list when no pool has been started.
        """
        if self._pool is None:
            return []
        n = samples if samples is not None else max(4, self.workers * 4)
        return list(self._pool.map(_worker_probe, range(n)))
