"""Parallel batch evaluation of design points.

Real Dovado runs are embarrassingly parallel across design points — each
Vivado invocation is an independent subprocess — and VEDA inherits that
structure: a run is a pure function of (source, top, part, directives,
parameters, seed), so evaluating a batch across worker processes is
*bitwise equivalent* to the serial loop.  The QoR noise being keyed on run
content (not on generator state) is what makes this safe; see
:mod:`repro.util.rng`.

Workers are initialized once with a picklable :class:`EvaluatorSpec` and
rebuild their own :class:`~repro.core.evaluate.PointEvaluator`; built-in
case-study designs are re-registered by name inside each worker so
architectural models exist under ``spawn`` start methods too.

Caching note: per-worker tool caches are independent, so duplicate points
*within one batch* may be evaluated twice across different workers.  The
batch API dedups first and fans out unique points only.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.core.evaluate import PointEvaluator
from repro.core.metrics import MetricSpec
from repro.core.point import EvaluatedPoint
from repro.directives import DirectiveSet
from repro.flow.vivado_sim import FlowStep
from repro.moo.problem import Sense

__all__ = ["EvaluatorSpec", "ParallelPointEvaluator"]


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything a worker needs to rebuild the evaluator (all picklable)."""

    source: str
    language: str
    top: str
    part: str = "XC7K70T"
    target_period_ns: float = 1.0
    step: str = "implementation"
    synth_directive: str = "Default"
    impl_directive: str = "Default"
    metrics: tuple[tuple[str, str], ...] = (("LUT", "min"), ("frequency", "max"))
    boxed: bool = True
    seed: int = 0
    design_name: str | None = None  # built-in design to re-register in workers

    @classmethod
    def from_evaluator(
        cls, evaluator: PointEvaluator, design_name: str | None = None
    ) -> "EvaluatorSpec":
        return cls(
            source=evaluator.source_text,
            language=str(evaluator.language),
            top=evaluator.module.name,
            part=evaluator.part,
            target_period_ns=evaluator.target_period_ns,
            step=str(evaluator.step),
            synth_directive=str(evaluator.directives.synth),
            impl_directive=str(evaluator.directives.impl),
            metrics=tuple(
                (s.canonical_name(), str(s.sense)) for s in evaluator.metrics
            ),
            boxed=evaluator.boxed,
            seed=evaluator.seed,
            design_name=design_name,
        )

    def build(self) -> PointEvaluator:
        if self.design_name:
            from repro.designs import get_design

            get_design(self.design_name)  # side effect: registers models
        return PointEvaluator(
            source=self.source,
            language=self.language,
            top=self.top,
            part=self.part,
            target_period_ns=self.target_period_ns,
            step=FlowStep(self.step),
            directives=DirectiveSet.parse(self.synth_directive, self.impl_directive),
            metrics=[
                MetricSpec(name, Sense(sense)) for name, sense in self.metrics
            ],
            boxed=self.boxed,
            seed=self.seed,
        )


# Per-worker evaluator (module global: one build per worker process).
_WORKER: PointEvaluator | None = None


def _init_worker(spec: EvaluatorSpec) -> None:
    global _WORKER
    _WORKER = spec.build()


def _evaluate_one(params: dict[str, int]) -> EvaluatedPoint:
    assert _WORKER is not None, "worker not initialized"
    return _WORKER.evaluate(params)


def _freeze(params: Mapping[str, int]) -> tuple[tuple[str, int], ...]:
    return tuple(sorted((k.lower(), int(v)) for k, v in params.items()))


@dataclass
class ParallelPointEvaluator:
    """Fan a batch of configurations over a process pool.

    With ``workers=0`` (or 1) the batch runs serially in-process — the
    reference behaviour parallel runs must reproduce exactly.
    """

    spec: EvaluatorSpec
    workers: int = 0
    _serial: PointEvaluator | None = field(default=None, init=False, repr=False)

    def evaluate_many(
        self, points: Sequence[Mapping[str, int]]
    ) -> list[EvaluatedPoint]:
        unique: dict[tuple, dict[str, int]] = {}
        order: list[tuple] = []
        for p in points:
            key = _freeze(p)
            order.append(key)
            unique.setdefault(key, {k: int(v) for k, v in p.items()})

        if self.workers <= 1:
            if self._serial is None:
                self._serial = self.spec.build()
            results = {
                key: self._serial.evaluate(params)
                for key, params in unique.items()
            }
        else:
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self.spec,),
            ) as pool:
                outs = list(pool.map(_evaluate_one, unique.values()))
            results = dict(zip(unique.keys(), outs))

        return [results[key] for key in order]
