"""Parallel batch evaluation of design points.

Real Dovado runs are embarrassingly parallel across design points — each
Vivado invocation is an independent subprocess — and VEDA inherits that
structure: a run is a pure function of (source, top, part, directives,
parameters, seed), so evaluating a batch across worker processes is
*bitwise equivalent* to the serial loop.  The QoR noise being keyed on run
content (not on generator state) is what makes this safe; see
:mod:`repro.util.rng`.

The evaluator is built for *reuse across batches*: the process pool starts
lazily on the first multi-worker batch and then stays alive for the
evaluator's lifetime, so each worker parses the evaluator spec and builds
its :class:`~repro.core.evaluate.PointEvaluator` exactly once — per-worker
tool caches stay warm across NSGA-II generations instead of being thrown
away per batch.  Call :meth:`ParallelPointEvaluator.close` (or use the
evaluator as a context manager) to shut the pool down.

A cross-batch memo table guarantees a configuration is never dispatched
twice: repeats — within one batch or in a later generation — replay the
memoized metrics as cache-priced answers (``source="cache"``, zero
simulated seconds), exactly what the serial reference produces when the
shared tool session answers a repeated run from its result cache.  An
*in-flight* table extends the same guarantee across overlapping batches:
a configuration submitted by one batch and re-requested by another before
it completes is never dispatched a second time — the later batch waits on
the same future.

Batches are scheduled out of order: :meth:`ParallelPointEvaluator.submit_many`
returns a :class:`PendingBatch` immediately, so callers can pipeline
several batches into the pool and let workers drain them without
per-batch barriers.  Completion order only affects commutative telemetry
(spans, counters); per-point ledger records are buffered and committed in
submission order by the batch that dispatched them, and
:meth:`PendingBatch.results` returns points in request order — the
schedule is invisible in every output.

When a persistent :class:`~repro.cache.ResultStore` is attached, the
parent consults it before dispatching a fresh configuration (a hit is
adopted as a cache-priced answer, ledger ``origin="store"``) and appends
every tool-produced result/failure after completion, so later *processes*
— not just later batches — replay instead of re-running the tool.

Workers are initialized once with a picklable :class:`EvaluatorSpec` and
rebuild their own evaluator; built-in case-study designs are re-registered
by name inside each worker so architectural models exist under ``spawn``
start methods too.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import time
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.analysis.gate import PreflightGate
from repro.cache import (
    FULL_RANK,
    KIND_FAILURE,
    KIND_POINT,
    ResultStore,
    decode_point,
    encode_failure,
    encode_point,
    point_key,
    run_identity,
)
from repro.core.evaluate import PointEvaluator
from repro.core.metrics import MetricSpec
from repro.core.point import EvaluatedPoint
from repro.directives import DirectiveSet
from repro.errors import ReproError
from repro.flow.vivado_sim import FlowStep
from repro.moo.problem import Sense
from repro.observe import current_telemetry, enable_telemetry

__all__ = [
    "EvaluatorSpec",
    "EvaluationFailure",
    "ParallelPointEvaluator",
    "PendingBatch",
    "RemoteEvaluationError",
]


class RemoteEvaluationError(ReproError):
    """A worker-side evaluation failed (carries the original error name)."""

    def __init__(self, original_type: str, message: str) -> None:
        super().__init__(f"{original_type}: {message}")
        self.original_type = original_type


@dataclass(frozen=True)
class EvaluationFailure:
    """Picklable record of a worker-side :class:`ReproError`.

    Tool exceptions carry constructor signatures that do not survive
    pickling, so workers ship this marker instead; callers that need the
    serial behaviour re-raise via :meth:`to_error`.

    ``simulated_seconds`` is the partial tool time the failed run charged
    before raising (0 for DRC rejections and for memo replays) — the cost
    accounting layer charges it against the DSE soft deadline.
    """

    original_type: str
    message: str
    simulated_seconds: float = 0.0

    def to_error(self) -> RemoteEvaluationError:
        return RemoteEvaluationError(self.original_type, self.message)


@dataclass(frozen=True)
class EvaluatorSpec:
    """Everything a worker needs to rebuild the evaluator (all picklable)."""

    source: str
    language: str
    top: str
    part: str = "XC7K70T"
    target_period_ns: float = 1.0
    step: str = "implementation"
    synth_directive: str = "Default"
    impl_directive: str = "Default"
    metrics: tuple[tuple[str, str], ...] = (("LUT", "min"), ("frequency", "max"))
    boxed: bool = True
    seed: int = 0
    design_name: str | None = None  # built-in design to re-register in workers
    incremental: bool = False
    #: Real wall-clock seconds slept per *simulated* tool second in pool
    #: workers, emulating the latency of a real tool invocation (cache and
    #: memo answers stay instant, as they are in the real flow).  0 (the
    #: default) disables it.  Scheduling benchmarks use this to measure
    #: schedule quality where tool runs wait on an external process.
    emulate_tool_latency: float = 0.0

    @classmethod
    def from_evaluator(
        cls, evaluator: PointEvaluator, design_name: str | None = None
    ) -> "EvaluatorSpec":
        return cls(
            source=evaluator.source_text,
            language=str(evaluator.language),
            top=evaluator.module.name,
            part=evaluator.part,
            target_period_ns=evaluator.target_period_ns,
            step=str(evaluator.step),
            synth_directive=str(evaluator.directives.synth),
            impl_directive=str(evaluator.directives.impl),
            metrics=tuple(
                (s.canonical_name(), str(s.sense)) for s in evaluator.metrics
            ),
            boxed=evaluator.boxed,
            seed=evaluator.seed,
            design_name=design_name,
            incremental=getattr(evaluator, "incremental", False),
        )

    def build(self) -> PointEvaluator:
        if self.design_name:
            from repro.designs import get_design

            get_design(self.design_name)  # side effect: registers models
        return PointEvaluator(
            source=self.source,
            language=self.language,
            top=self.top,
            part=self.part,
            target_period_ns=self.target_period_ns,
            step=FlowStep(self.step),
            directives=DirectiveSet.parse(self.synth_directive, self.impl_directive),
            metrics=[
                MetricSpec(name, Sense(sense)) for name, sense in self.metrics
            ],
            boxed=self.boxed,
            seed=self.seed,
            incremental=self.incremental,
        )


# Per-worker evaluator (module globals: one build per worker process).
_WORKER: PointEvaluator | None = None
_INIT_CALLS = 0
_WORKER_LATENCY = 0.0


def _init_worker(spec: EvaluatorSpec, telemetry_enabled: bool = False) -> None:
    global _WORKER, _INIT_CALLS, _WORKER_LATENCY
    _INIT_CALLS += 1
    if telemetry_enabled:
        # The worker keeps a local bundle; every task drains it into the
        # result tuple so the parent can merge spans/records/counters.
        enable_telemetry()
    _WORKER = spec.build()
    _WORKER_LATENCY = max(0.0, float(spec.emulate_tool_latency))


def _evaluate_one(params: dict[str, int]) -> EvaluatedPoint:
    assert _WORKER is not None, "worker not initialized"
    return _WORKER.evaluate(params)


def _evaluate_one_safe(
    params: dict[str, int],
) -> tuple[EvaluatedPoint | EvaluationFailure, dict | None]:
    try:
        result: EvaluatedPoint | EvaluationFailure = _evaluate_one(params)
    except ReproError as exc:
        assert _WORKER is not None
        result = EvaluationFailure(
            type(exc).__name__,
            str(exc),
            simulated_seconds=_WORKER.last_failure_seconds,
        )
    if _WORKER_LATENCY > 0.0 and result.simulated_seconds > 0.0:
        # Emulated tool latency: a fresh run waits like a real tool
        # invocation would; cache answers (0 simulated seconds) stay
        # instant.  The sleep blocks only this worker process, so the
        # schedule — not the host's core count — sets the wall clock.
        time.sleep(result.simulated_seconds * _WORKER_LATENCY)
    tel = current_telemetry()
    delta = tel.drain_delta() if tel is not None else None
    return result, delta


def _worker_probe(_: int) -> tuple[int, int]:
    """Debug task: (pid, initializer-call count) for the executing worker."""
    return os.getpid(), _INIT_CALLS


def _freeze(params: Mapping[str, int]) -> tuple[tuple[str, int], ...]:
    return tuple(sorted((k.lower(), int(v)) for k, v in params.items()))


def _as_cache_hit(point: EvaluatedPoint) -> EvaluatedPoint:
    """A repeat of a memoized point, priced as the tool's cache answer."""
    return dataclasses.replace(point, source="cache", simulated_seconds=0.0)


@dataclass
class PendingBatch:
    """A batch accepted by :meth:`ParallelPointEvaluator.submit_many`.

    Holds the request order of its points plus the set of configurations
    this batch *owns* (it caused their dispatch).  :meth:`results` blocks
    until every point is resolved, commits the owned ledger records in
    submission order, and returns results in request order.  A batch must
    be collected exactly once; dropping one on the floor leaves its owned
    ledger records buffered on the evaluator.
    """

    _evaluator: "ParallelPointEvaluator"
    _points: list[dict[str, int]]
    _keys: list[tuple]
    _first_occurrence: dict[tuple, int]
    _owned_keys: list[tuple]
    _collected: bool = field(default=False, init=False)

    def __len__(self) -> int:
        return len(self._points)

    def done(self) -> bool:
        """True when no point of this batch is still running in a worker."""
        inflight = self._evaluator._inflight
        return all(
            key not in inflight or inflight[key].done() for key in self._keys
        )

    def results(
        self, on_error: str = "raise"
    ) -> list[EvaluatedPoint | EvaluationFailure]:
        """Block until the batch is resolved; return results in request order.

        ``on_error="raise"`` re-raises the first failed point's error (as
        a :class:`RemoteEvaluationError`); ``on_error="return"`` yields an
        :class:`EvaluationFailure` in that point's slot instead.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")
        if self._collected:
            raise RuntimeError("PendingBatch.results() may only be consumed once")
        ev = self._evaluator
        tel = current_telemetry()
        ev._settle(self._keys)
        # Commit the worker ledger records this batch dispatched in
        # submission order — completion order stays invisible in the trace.
        for key in self._owned_keys:
            records = ev._owned_records.pop(key, None)
            if records and tel is not None:
                tel.ledger.extend_from(records, origin="worker")
        self._collected = True

        results: list[EvaluatedPoint | EvaluationFailure] = []
        for i, key in enumerate(self._keys):
            stored = ev.memo[key]
            replay = self._first_occurrence.get(key) != i
            if replay:
                ev.memo_hits += 1
                if tel is not None:
                    ev._record_replay(tel, self._points[i], stored)
            if isinstance(stored, EvaluationFailure):
                if replay:
                    # A replayed failure spends no new tool time.
                    stored = dataclasses.replace(stored, simulated_seconds=0.0)
                if on_error == "raise":
                    raise stored.to_error()
                results.append(stored)
            else:
                results.append(_as_cache_hit(stored) if replay else stored)
        return results


@dataclass
class ParallelPointEvaluator:
    """Fan batches of configurations over a persistent process pool.

    With ``workers=0`` (or 1) batches run serially in-process — the
    reference behaviour parallel runs must reproduce exactly.  The pool
    (and the serial fallback evaluator) is created lazily and reused for
    every subsequent batch; ``close()`` / ``with`` releases it.

    ``memo`` is the cross-batch memo table keyed on the frozen parameter
    binding: first occurrences are dispatched, repeats replay the stored
    result as a cache-priced answer.  ``store`` optionally plugs in the
    persistent cross-process result store, consulted before dispatch and
    appended after every tool run (disabled for incremental specs, whose
    results are order-dependent).  ``dispatched``/``memo_hits``/
    ``store_hits`` count the split for perf reporting.
    """

    spec: EvaluatorSpec
    workers: int = 0
    start_method: str | None = None
    store: ResultStore | None = None
    _serial: PointEvaluator | None = field(default=None, init=False, repr=False)
    _pool: ProcessPoolExecutor | None = field(default=None, init=False, repr=False)
    memo: dict[tuple, EvaluatedPoint | EvaluationFailure] = field(
        default_factory=dict, init=False, repr=False
    )
    dispatched: int = field(default=0, init=False)
    memo_hits: int = field(default=0, init=False)
    drc_rejections: int = field(default=0, init=False)
    store_hits: int = field(default=0, init=False)
    store_puts: int = field(default=0, init=False)
    _gate: PreflightGate | None = field(default=None, init=False, repr=False)
    _identity: dict | None = field(default=None, init=False, repr=False)
    _inflight: dict[tuple, Future] = field(
        default_factory=dict, init=False, repr=False
    )
    _inflight_params: dict[tuple, dict[str, int]] = field(
        default_factory=dict, init=False, repr=False
    )
    _owned_records: dict[tuple, list] = field(
        default_factory=dict, init=False, repr=False
    )

    # -- lifecycle ------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = (
                multiprocessing.get_context(self.start_method)
                if self.start_method
                else None
            )
            # Telemetry enablement is frozen at pool creation: workers
            # started with it off never collect (so a later enable in the
            # parent sees no worker records until the pool is rebuilt).
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(self.spec, current_telemetry() is not None),
            )
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; memo table survives)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelPointEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False)
        except Exception:
            pass

    # -- evaluation -----------------------------------------------------

    def gate(self) -> PreflightGate:
        """The driver-side DRC pre-flight gate (built lazily from the spec).

        Runs in the parent process so infeasible points are rejected before
        they are shipped to a worker: the verdict is memoized here as an
        :class:`EvaluationFailure` whose message is byte-identical to the
        error the serial evaluator's own gate raises.
        """
        if self._gate is None:
            from repro.hdl.ast import HdlLanguage
            from repro.hdl.frontend import parse_source

            modules = parse_source(self.spec.source, HdlLanguage(self.spec.language))
            matches = [m for m in modules if m.name.lower() == self.spec.top.lower()]
            if not matches:
                raise LookupError(f"top {self.spec.top!r} not found in spec source")
            self._gate = PreflightGate(matches[0], boxed=self.spec.boxed)
        return self._gate

    # -- result store ---------------------------------------------------

    @staticmethod
    def _count(name: str) -> None:
        tel = current_telemetry()
        if tel is not None:
            tel.counters.inc(name)

    def _store_identity(self) -> dict | None:
        """The store namespace of this evaluator (None = store disabled).

        Incremental flows warm-start from whatever ran earlier in the same
        session, so their results are order-dependent and must never be
        replayed across processes.
        """
        if self.store is None or self.spec.incremental:
            return None
        if self._identity is None:
            self._identity = run_identity(
                source=self.spec.source,
                language=self.spec.language,
                top=self.spec.top,
                part=self.spec.part,
                step=self.spec.step,
                synth_directive=self.spec.synth_directive,
                impl_directive=self.spec.impl_directive,
                target_period_ns=self.spec.target_period_ns,
                seed=self.spec.seed,
                metrics=self.spec.metrics,
                boxed=self.spec.boxed,
            )
        return self._identity

    def _adopt_stored(self, key: tuple, params: dict[str, int], record) -> None:
        """Fold a store hit into the memo as a cache-priced answer."""
        self.store_hits += 1
        self._count("cache.store_hit")
        tel = current_telemetry()
        if record.kind == KIND_FAILURE:
            payload = record.payload
            failure = EvaluationFailure(
                str(payload.get("original_type", "ReproError")),
                str(payload.get("message", "")),
                simulated_seconds=0.0,
            )
            self.memo[key] = failure
            if tel is not None:
                tel.ledger.append(
                    params=params,
                    outcome="failed",
                    charge=0.0,
                    error_type=failure.original_type,
                    origin="store",
                )
        else:
            point = dataclasses.replace(
                decode_point(record.payload),
                parameters=dict(params),
                source="cache",
                simulated_seconds=0.0,
            )
            self.memo[key] = point
            if tel is not None:
                tel.ledger.append(
                    params=params,
                    outcome="cache",
                    metrics=point.metrics,
                    charge=0.0,
                    origin="store",
                )

    def _store_put(
        self, params: dict[str, int], result: EvaluatedPoint | EvaluationFailure
    ) -> None:
        """Append one tool-produced result to the persistent store."""
        identity = self._store_identity()
        if identity is None:
            return
        if isinstance(result, EvaluationFailure):
            # DRC rejections are recomputed locally at zero cost and depend
            # on rule configuration, not the flow — never persisted.
            if result.original_type == "DrcViolationError":
                return
            stored = self.store.put(
                point_key(identity, params),
                KIND_FAILURE,
                encode_failure(
                    result.original_type, result.message, result.simulated_seconds
                ),
            )
        else:
            stored = self.store.put(
                point_key(identity, params), KIND_POINT, encode_point(result)
            )
        if stored:
            self.store_puts += 1
            self._count("cache.store_put")

    # -- scheduling -----------------------------------------------------

    def submit_many(self, points: Sequence[Mapping[str, int]]) -> PendingBatch:
        """Accept a batch for evaluation; returns without waiting.

        Fresh configurations are DRC-gated and store-consulted in the
        parent, then dispatched to the pool (or evaluated inline when
        ``workers <= 1``).  Configurations already memoized — or already
        in flight from an earlier batch — are never re-dispatched.
        Collect with :meth:`PendingBatch.results`.
        """
        tel = current_telemetry()
        pts = [{k: int(v) for k, v in p.items()} for p in points]
        keys = [_freeze(p) for p in pts]
        fresh: dict[tuple, dict[str, int]] = {}
        first_occurrence: dict[tuple, int] = {}
        for i, (key, p) in enumerate(zip(keys, pts)):
            if (
                key not in self.memo
                and key not in self._inflight
                and key not in fresh
            ):
                fresh[key] = p
                first_occurrence[key] = i

        if fresh:
            # DRC pre-flight: reject infeasible fresh points in the parent
            # process, before any worker dispatch.  The verdict is memoized
            # so repeats replay without re-checking, like any other failure.
            gate = self.gate()
            identity = self._store_identity()
            for key in list(fresh):
                params = fresh[key]
                violation = gate.violation(params)
                if violation is not None:
                    self.memo[key] = EvaluationFailure(
                        type(violation).__name__, str(violation)
                    )
                    self.drc_rejections += 1
                    # Pre-dispatch rejects never reach a worker, so this
                    # layer owns their ledger record.
                    if tel is not None:
                        tel.ledger.append(
                            params=params,
                            outcome="drc",
                            charge=0.0,
                            error_type=type(violation).__name__,
                            origin="pool",
                        )
                    del fresh[key]
                    continue
                # Persistent-store consult: a hit replays a prior process's
                # tool run as a cache answer, before any dispatch.
                if identity is not None:
                    record = self.store.get(point_key(identity, params))
                    # Low-rank records are fidelity-gate probes from another
                    # process — never a substitute for a full-route answer.
                    if record is not None and record.rank >= FULL_RANK:
                        self._adopt_stored(key, params, record)
                        del fresh[key]

        owned = list(fresh)
        if fresh:
            self.dispatched += len(fresh)
            if self.workers <= 1:
                if self._serial is None:
                    self._serial = self.spec.build()
                for key, params in fresh.items():
                    try:
                        # The in-process evaluator records its own ledger
                        # entries (it sees the parent's telemetry bundle).
                        result: EvaluatedPoint | EvaluationFailure = (
                            self._serial.evaluate(params)
                        )
                    except ReproError as exc:
                        result = EvaluationFailure(
                            type(exc).__name__,
                            str(exc),
                            simulated_seconds=self._serial.last_failure_seconds,
                        )
                    self.memo[key] = result
                    self._store_put(params, result)
                    if (
                        self.spec.emulate_tool_latency > 0.0
                        and result.simulated_seconds > 0.0
                    ):
                        # Mirror the worker-side latency emulation: the sleep
                        # scales with the simulated seconds actually charged,
                        # so partial flows (stage-cache hits, low-fidelity
                        # probes) wait proportionally to the stages they ran
                        # — not the full-flow price.
                        time.sleep(
                            result.simulated_seconds
                            * self.spec.emulate_tool_latency
                        )
            else:
                pool = self._ensure_pool()
                for key, params in fresh.items():
                    self._inflight[key] = pool.submit(_evaluate_one_safe, params)
                    self._inflight_params[key] = params
        return PendingBatch(self, pts, keys, first_occurrence, owned)

    def _settle(self, keys: Sequence[tuple]) -> None:
        """Wait for any of *keys* still in flight, absorbing completions.

        Futures are absorbed in completion order — spans and counters
        merge immediately (they are commutative accumulations), while
        ledger records are buffered per key for the owning batch to
        commit in submission order.
        """
        waiting: dict[Future, tuple] = {}
        for key in keys:
            fut = self._inflight.get(key)
            if fut is not None:
                waiting.setdefault(fut, key)
        tel = current_telemetry()
        for fut in as_completed(waiting):
            key = waiting[fut]
            if self._inflight.get(key) is not fut:
                continue  # another batch's settle absorbed it first
            result, delta = fut.result()
            del self._inflight[key]
            params = self._inflight_params.pop(key)
            self.memo[key] = result
            if delta is not None:
                records = delta.pop("records", ())
                if records:
                    self._owned_records[key] = list(records)
                if tel is not None:
                    tel.merge_delta(delta, origin="worker")
            self._store_put(params, result)

    def evaluate_many(
        self,
        points: Sequence[Mapping[str, int]],
        on_error: str = "raise",
    ) -> list[EvaluatedPoint | EvaluationFailure]:
        """Evaluate a batch, reusing the pool and the cross-batch memo.

        Equivalent to ``submit_many(points).results(on_error)`` — one
        batch submitted and collected with nothing overlapping it.

        ``on_error="raise"`` re-raises the first worker-side
        :class:`ReproError` (as a :class:`RemoteEvaluationError`);
        ``on_error="return"`` yields an :class:`EvaluationFailure` in that
        point's slot instead, so callers can apply their own penalty
        policy without losing the rest of the batch.
        """
        if on_error not in ("raise", "return"):
            raise ValueError(f"on_error must be 'raise' or 'return', got {on_error!r}")
        return self.submit_many(points).results(on_error)

    @staticmethod
    def _record_replay(
        tel, params: Mapping[str, int], stored: EvaluatedPoint | EvaluationFailure
    ) -> None:
        """Ledger record for a memo replay (zero charge — no tool touched)."""
        if isinstance(stored, EvaluationFailure):
            drc = stored.original_type == "DrcViolationError"
            tel.ledger.append(
                params=params,
                outcome="drc" if drc else "failed",
                charge=0.0,
                error_type=stored.original_type,
                origin="memo",
            )
        else:
            tel.ledger.append(
                params=params,
                outcome="cache",
                metrics=stored.metrics,
                charge=0.0,
                origin="memo",
            )

    # -- introspection --------------------------------------------------

    def worker_probes(self, samples: int | None = None) -> list[tuple[int, int]]:
        """(pid, initializer-call count) reported by pool workers.

        Dispatches ``samples`` probe tasks (default ``4 × workers``, with
        a floor of 4 so even one-worker pools get several probes); task
        placement is up to the pool, so probes may not cover every worker,
        but any worker that answers reports how often it was initialized.
        Returns an empty list when no pool has been started.
        """
        if self._pool is None:
            return []
        n = samples if samples is not None else max(4, self.workers * 4)
        return list(self._pool.map(_worker_probe, range(n)))
