"""Exact-set evaluation sweeps (the paper's design-automation mode).

Dovado supports "an exact exploration of a given set of parameters": the
user enumerates configurations explicitly, and the tool evaluates them
all.  These helpers build such sets (cartesian grids, zipped lists),
evaluate them — optionally in parallel — and package the outcome with the
table/CSV/Pareto conveniences a sweep report needs.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.evaluate import PointEvaluator
from repro.core.point import EvaluatedPoint
from repro.moo.nds import non_dominated_mask
from repro.moo.problem import Sense
from repro.util.io import save_csv
from repro.util.tables import render_table

__all__ = ["grid", "zip_points", "SweepResult", "run_sweep"]


def grid(**values: Sequence[int]) -> list[dict[str, int]]:
    """Cartesian product of per-parameter value lists.

    >>> grid(A=[1, 2], B=[10])
    [{'A': 1, 'B': 10}, {'A': 2, 'B': 10}]
    """
    if not values:
        return []
    names = list(values)
    combos = itertools.product(*(values[n] for n in names))
    return [dict(zip(names, (int(v) for v in combo))) for combo in combos]


def zip_points(**values: Sequence[int]) -> list[dict[str, int]]:
    """Element-wise zip of equal-length value lists (explicit point list)."""
    if not values:
        return []
    lengths = {len(v) for v in values.values()}
    if len(lengths) != 1:
        raise ValueError(f"zip_points needs equal-length lists, got {lengths}")
    names = list(values)
    return [
        {n: int(values[n][i]) for n in names}
        for i in range(lengths.pop())
    ]


@dataclass
class SweepResult:
    """Evaluated sweep with reporting conveniences."""

    points: list[EvaluatedPoint]
    metric_names: tuple[str, ...]
    metric_senses: tuple[Sense, ...]

    def __len__(self) -> int:
        return len(self.points)

    def to_table(self, title: str | None = None) -> str:
        if not self.points:
            return title or "(empty sweep)"
        param_names = list(self.points[0].parameters)
        headers = (*param_names, *self.metric_names, "source")
        rows = [
            tuple(p.parameters[n] for n in param_names)
            + tuple(round(p.metrics[m], 2) for m in self.metric_names)
            + (p.source,)
            for p in self.points
        ]
        return render_table(headers, rows, title=title)

    def save_csv(self, path: str | Path) -> Path:
        if not self.points:
            raise ValueError("cannot save an empty sweep")
        fields = list(self.points[0].as_row().keys())
        return save_csv(path, fields, (p.as_row() for p in self.points))

    def best(self, metric: str) -> EvaluatedPoint:
        """The best point for one metric (respecting its sense)."""
        idx = self.metric_names.index(metric)
        sense = self.metric_senses[idx]
        key = lambda p: p.metrics[metric]
        return (max if sense == Sense.MAXIMIZE else min)(self.points, key=key)

    def pareto(self) -> list[EvaluatedPoint]:
        """Non-dominated subset across all sweep metrics."""
        if not self.points:
            return []
        F = np.array([
            [
                -p.metrics[m] if s == Sense.MAXIMIZE else p.metrics[m]
                for m, s in zip(self.metric_names, self.metric_senses)
            ]
            for p in self.points
        ])
        mask = non_dominated_mask(F)
        return [p for p, keep in zip(self.points, mask) if keep]

    def total_simulated_seconds(self) -> float:
        return sum(p.simulated_seconds for p in self.points)


def run_sweep(
    evaluator: PointEvaluator,
    points: Sequence[Mapping[str, int]],
    workers: int = 0,
    design_name: str | None = None,
    result_store=None,
) -> SweepResult:
    """Evaluate every configuration in ``points``.

    ``workers > 1`` fans the batch over a process pool (see
    :mod:`repro.core.parallel`); ``design_name`` names a built-in design so
    workers can re-register its architectural model.  ``result_store``
    (a :class:`repro.cache.ResultStore` or a path) plugs in the persistent
    cross-run store: previously evaluated configurations — by any process
    — replay as cache answers, and fresh results are appended for the
    next run.
    """
    if result_store is not None and not hasattr(result_store, "get"):
        from repro.cache import open_store

        result_store = open_store(result_store)
    if workers > 1 or result_store is not None:
        from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator

        spec = EvaluatorSpec.from_evaluator(evaluator, design_name=design_name)
        with ParallelPointEvaluator(
            spec=spec, workers=workers, store=result_store
        ) as pool:
            outs = pool.evaluate_many(list(points))
    else:
        outs = evaluator.evaluate_many(list(points))
    return SweepResult(
        points=outs,
        metric_names=evaluator.metric_names(),
        metric_senses=tuple(s.sense for s in evaluator.metrics),
    )
