"""Single design point evaluation (paper Section III-A, end to end).

:class:`PointEvaluator` performs the full Dovado automation pipeline per
configuration:

1. the module is already parsed and lint-validated at construction;
2. **boxing** — a per-point box wrapper is generated (unique top name per
   parameter binding, so the tool's result cache distinguishes points);
3. **script generation** — the TCL evaluation frame is rendered with the
   staged sources, part, clock, directives and step;
4. **tool run** — the script executes in the mini-TCL interpreter bound to
   the shared VEDA session (checkpoints and caches persist across points);
5. **metric extraction** — utilization/timing report *text* is parsed back
   and the metric vector assembled (Eq. 1 for frequency).

The evaluator is the only component the DSE fitness function talks to.
"""

from __future__ import annotations

import time
from typing import Mapping

from repro.analysis.gate import PreflightGate
from repro.boxing import build_box
from repro.core.metrics import (
    MetricSpec,
    default_metrics,
    metrics_from_reports,
    report_fmax,
)
from repro.core.point import EvaluatedPoint
from repro.directives import DirectiveSet
from repro.flow.vivado_sim import Fidelity, FlowStep, VivadoSim
from repro.hdl.ast import HdlLanguage, Module
from repro.errors import DrcViolationError, ReproError
from repro.hdl.frontend import parse_source
from repro.hdl.validate import validate_module
from repro.observe import current_telemetry
from repro.tcl import TclInterp, VivadoTclSession, bind_vivado_commands
from repro.tcl.frames import render_evaluation_script
from repro.util.rng import stable_hash_seed

__all__ = ["PointEvaluator"]

_EXT = {
    HdlLanguage.VHDL: "vhd",
    HdlLanguage.VERILOG: "v",
    HdlLanguage.SYSTEMVERILOG: "sv",
}


class PointEvaluator:
    """Evaluate parameter bindings of one module on one device."""

    def __init__(
        self,
        source: str,
        language: HdlLanguage | str,
        top: str,
        part: str = "XC7K70T",
        target_period_ns: float = 1.0,   # the paper targets 1 GHz
        step: FlowStep = FlowStep.IMPLEMENTATION,
        directives: DirectiveSet | None = None,
        metrics: list[MetricSpec] | None = None,
        boxed: bool = True,
        clock_port: str | None = None,
        seed: int = 0,
        incremental: bool = False,
    ) -> None:
        self.language = HdlLanguage(language)
        self.source_text = source
        modules = parse_source(source, self.language)
        matches = [m for m in modules if m.name.lower() == top.lower()]
        if not matches:
            names = ", ".join(m.name for m in modules) or "<none>"
            raise LookupError(f"top {top!r} not found in source (has: {names})")
        self.module: Module = matches[0]
        self.warnings = validate_module(self.module)
        # Point-level DRC pre-flight: evaluate() consults this gate before
        # touching the tool session, so infeasible bindings (null widths,
        # unboxable configurations) never cost a run.  Verdicts memoize on
        # the frozen binding — pure function of (module, params), no RNG.
        self.gate = PreflightGate(self.module, boxed=boxed, clock_port=clock_port)
        self.part = part
        self.target_period_ns = float(target_period_ns)
        self.step = step
        self.directives = directives or DirectiveSet()
        self.metrics = metrics or default_metrics()
        self.boxed = boxed
        self.clock_port = clock_port
        self.seed = seed
        # Incremental flows warm-start from session-local checkpoints, so
        # runs stop being pure per-point functions — parallel fan-out
        # checks this flag and falls back to the serial shared session.
        self.incremental = bool(incremental)
        self.sim = VivadoSim(
            part=part,
            seed=seed,
            incremental_synth=incremental,
            incremental_impl=incremental,
        )
        self.sim.read_hdl(source, self.language)
        self.evaluations = 0
        self.last_script = ""
        self.last_reports: dict[str, str] = {}
        # Simulated seconds the most recent *failed* evaluation charged to
        # the tool before raising (0.0 for DRC rejections, which never
        # touch the tool session) — the cost-accounting layer reads this
        # to charge failed points against the DSE soft deadline.
        self.last_failure_seconds = 0.0

    # ------------------------------------------------------------------

    def metric_names(self) -> tuple[str, ...]:
        return tuple(s.canonical_name() for s in self.metrics)

    def _box_top(self, params: Mapping[str, int]) -> str:
        # The full 63-bit tag: truncating to 32 bits lets two distinct
        # bindings collide on the box name, silently sharing a cached
        # RunResult (colliding pairs exist within ~2^17 bindings).
        tag = stable_hash_seed(sorted((k.lower(), int(v)) for k, v in params.items()))
        return f"box_{tag:016x}"

    def evaluate(
        self, params: Mapping[str, int], fidelity: Fidelity | str | None = None
    ) -> EvaluatedPoint:
        """Run one configuration through the flow.

        ``fidelity`` (``step=IMPLEMENTATION`` only) selects a rung of the
        flow ladder: ``None``/``FULL_ROUTE`` renders the script and runs
        the tool byte-identically to the pre-ladder evaluator;
        ``PLACED_ESTIMATE`` renders a place-without-route script;
        ``SYNTH_ESTIMATE`` renders a synthesis-only script;
        ``STATIC_ESTIMATE`` runs no tool stage at all — the session
        reports analytical bounds at zero simulated seconds.  The returned
        point and its ledger record are tagged with the fidelity the
        metrics were actually measured at.
        """
        params = {k: int(v) for k, v in params.items()}
        if fidelity is not None:
            fidelity = Fidelity(fidelity)
        if self.step != FlowStep.IMPLEMENTATION:
            requested = Fidelity.SYNTH_ESTIMATE
        else:
            requested = fidelity or Fidelity.FULL_ROUTE
        tel = current_telemetry()
        t0 = time.perf_counter() if tel is not None else 0.0
        try:
            self.gate.raise_for_point(params)
        except DrcViolationError as exc:
            self.last_failure_seconds = 0.0
            if tel is not None:
                tel.ledger.append(
                    params=params, outcome="drc", charge=0.0,
                    error_type=type(exc).__name__,
                    wall_s=time.perf_counter() - t0,
                )
            raise
        session = VivadoTclSession(sim=self.sim)
        if requested is Fidelity.STATIC_ESTIMATE:
            # The static rung's script carries no tool command, so the
            # session needs the request spelled out to distinguish it from
            # a synthesis-only evaluation.
            session.requested_fidelity = Fidelity.STATIC_ESTIMATE
        interp = TclInterp()
        bind_vivado_commands(interp, session)

        module_key = f"dut.{_EXT[self.language]}"
        session.stage_source(module_key, self.source_text, self.language)
        sources: list[tuple[str, HdlLanguage]] = [(module_key, self.language)]

        if self.boxed:
            box = build_box(
                self.module,
                params,
                clock_port=self.clock_port,
                box_name=self._box_top(params),
            )
            box.install(self.sim)
            # install() read the box source directly; stage it anyway so the
            # rendered script is faithful and re-runnable.
            box_key = f"{box.top}.{_EXT[box.language]}"
            session.stage_source(box_key, box.source, box.language)
            sources.append((box_key, box.language))
            top = box.top
            generic_args = {}
        else:
            top = self.module.name
            generic_args = params

        script = render_evaluation_script(
            sources=sources,
            top=top,
            part=self.part,
            target_period_ns=self.target_period_ns,
            step=self.step,
            directives=self.directives,
            fidelity=fidelity,
        )
        if generic_args:
            # Unboxed runs pass parameters as -generic options.
            generics = " ".join(
                f"-generic {k}={v}" for k, v in sorted(generic_args.items())
            )
            script = script.replace(
                "synth_design -top $top_module",
                f"synth_design -top $top_module {generics}",
            )
        self.last_script = script
        sim_before = self.sim.simulated_seconds
        try:
            interp.eval(script)
        except ReproError as exc:
            # The flow charges the partial cost of a failed run before
            # raising; attribute that delta to this point.
            charge = self.sim.simulated_seconds - sim_before
            self.last_failure_seconds = charge
            if tel is not None:
                tel.ledger.append(
                    params=params, outcome="failed", charge=charge,
                    error_type=type(exc).__name__,
                    wall_s=time.perf_counter() - t0,
                    fidelity=str(requested),
                )
            raise

        self.last_reports = {
            "utilization": interp.files["utilization.rpt"],
            "timing": interp.files["timing.rpt"],
        }
        values = metrics_from_reports(
            interp.files["utilization.rpt"],
            interp.files["timing.rpt"],
            self.metrics,
        )
        wanted = {s.canonical_name() for s in self.metrics}
        if "performance" in wanted:
            values["performance"] = self._performance(
                params, report_fmax(interp.files["timing.rpt"])
            )
        if "power" in wanted:
            from repro.flow.power import estimate_power
            from repro.flow.reports import parse_utilization_report

            utilization = parse_utilization_report(interp.files["utilization.rpt"])
            values["power"] = estimate_power(
                utilization.used,
                self.sim.device,
                frequency_mhz=report_fmax(interp.files["timing.rpt"]),
            ).total_mw
        self.evaluations += 1
        # Cache attribution comes from the tool's explicit flag (plumbed
        # run -> session result), not from ``last_run_seconds == 0.0``,
        # which can be stale after an intervening failed or gated run.
        result = session.result
        cached = result.from_cache if result is not None else self.sim.last_run_cached
        measured = result.fidelity if result is not None else requested
        point = EvaluatedPoint(
            parameters=dict(params),
            metrics=values,
            source="cache" if cached else "tool",
            simulated_seconds=0.0 if cached else self.sim.last_run_seconds,
            fidelity=str(measured),
        )
        if tel is not None:
            tel.ledger.append(
                params=params, outcome=point.source, metrics=values,
                charge=point.simulated_seconds,
                wall_s=time.perf_counter() - t0,
                fidelity=str(measured),
            )
        return point

    def evaluate_many(self, points: list[Mapping[str, int]]) -> list[EvaluatedPoint]:
        """Design automation mode: evaluate an explicit configuration list."""
        return [self.evaluate(p) for p in points]

    def _performance(self, params: Mapping[str, int], fmax_mhz: float) -> float:
        """Resolve the registered static performance model for the module.

        Raises when the ``performance`` metric was requested but no model
        is registered — a silent zero would corrupt the Pareto front.
        """
        from repro.perf import performance_model_for

        model = performance_model_for(self.module.name)
        if model is None:
            raise LookupError(
                f"metric 'performance' requested but no performance model is "
                f"registered for module {self.module.name!r}; call "
                "repro.perf.register_performance_model first"
            )
        # The model sees the full environment (defaults + overrides).
        from repro.synth.elaborate import resolve_environment

        env = resolve_environment(self.module, params)
        return float(model.throughput(env, fmax_mhz))
