"""Project persistence: save and resume exploration sessions.

The expensive asset of a Dovado run is the *synthetic dataset* — every
(design point, tool result) pair paid for with a real synthesis/
implementation run — plus the incremental-flow checkpoints.  The paper's
future work worries exactly about "amortiz[ing] the expensive synthetic
dataset generation"; persisting it across sessions is the simplest
amortization.

A project directory contains::

    project.json      design identity, part, metrics, space, seed
    dataset.csv       the synthetic dataset (encoded points + raw metrics)
    checkpoints.json  incremental-flow placement archive
    <name>.json/.csv  exploration results (written by DseResult.save)

:func:`save_project` snapshots a live session; :func:`load_project`
rebuilds a session whose control model is pre-loaded with the stored
dataset — resuming costs **zero tool runs** before new points are needed.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.metrics import MetricSpec
from repro.core.session import DseSession
from repro.core.spaces import (
    BoolParam,
    Dimension,
    IntRange,
    ParameterSpace,
    PowerOfTwoRange,
)
from repro.errors import ReproError
from repro.moo.problem import Sense
from repro.util.io import load_csv, load_json, save_csv, save_json

__all__ = ["save_project", "load_project"]

_DIM_KIND = {IntRange: "int", PowerOfTwoRange: "pow2", BoolParam: "bool"}


def _dim_to_dict(dim: Dimension) -> dict:
    kind = _DIM_KIND.get(type(dim))
    if kind is None:
        raise ReproError(f"cannot persist dimension type {type(dim).__name__}")
    return {"kind": kind, "name": dim.name, "low": dim.low, "high": dim.high}


def _dim_from_dict(d: dict) -> Dimension:
    kind = d["kind"]
    if kind == "int":
        return IntRange(d["name"], int(d["low"]), int(d["high"]))
    if kind == "pow2":
        return PowerOfTwoRange(d["name"], int(d["low"]), int(d["high"]))
    if kind == "bool":
        return BoolParam(d["name"])
    raise ReproError(f"unknown dimension kind {kind!r} in project file")


def save_project(session: DseSession, directory: str | Path) -> Path:
    """Snapshot ``session`` (configuration + dataset + checkpoints)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    evaluator = session.evaluator

    payload = {
        "version": 1,
        "source": evaluator.source_text,
        "language": str(evaluator.language),
        "top": evaluator.module.name,
        "part": evaluator.part,
        "target_period_ns": evaluator.target_period_ns,
        "step": str(evaluator.step),
        "seed": evaluator.seed,
        "use_model": session.fitness.use_model,
        "pretrain_size": session.fitness.pretrain_size,
        "metrics": [
            {"name": s.canonical_name(), "sense": str(s.sense)}
            for s in evaluator.metrics
        ],
        "space": [_dim_to_dict(d) for d in session.space.dimensions],
    }
    save_json(directory / "project.json", payload)

    dataset = session.fitness.control.dataset
    if len(dataset) > 0:
        X = dataset.X()
        Y = dataset.Y()
        var_cols = [f"x{i}" for i in range(X.shape[1])]
        metric_cols = list(dataset.metric_names)
        rows = [
            {**{c: int(x) for c, x in zip(var_cols, xrow)},
             **{c: float(y) for c, y in zip(metric_cols, yrow)}}
            for xrow, yrow in zip(X, Y)
        ]
        save_csv(directory / "dataset.csv", var_cols + metric_cols, rows)

    evaluator.sim.checkpoints.write(directory / "checkpoints.json")
    return directory / "project.json"


def load_project(directory: str | Path) -> DseSession:
    """Rebuild a session from a project directory.

    The control model is pre-loaded with the persisted dataset (threshold,
    bandwidth, and MSE re-derived by a refit), and the tool session gets
    the persisted checkpoint archive.  ``session.explore(pretrain=False)``
    then continues without repeating the synthetic-dataset investment.
    """
    directory = Path(directory)
    payload = load_json(directory / "project.json")
    if payload.get("version") != 1:
        raise ReproError(f"unsupported project version {payload.get('version')!r}")

    from repro.flow.vivado_sim import FlowStep

    space = ParameterSpace([_dim_from_dict(d) for d in payload["space"]])
    metrics = [
        MetricSpec(m["name"], Sense(m["sense"])) for m in payload["metrics"]
    ]
    session = DseSession(
        source=payload["source"],
        language=payload["language"],
        top=payload["top"],
        space=space,
        part=payload["part"],
        metrics=metrics,
        target_period_ns=float(payload["target_period_ns"]),
        step=FlowStep(payload["step"]),
        use_model=bool(payload["use_model"]),
        pretrain_size=int(payload["pretrain_size"]),
        seed=int(payload["seed"]),
    )

    dataset_path = directory / "dataset.csv"
    if dataset_path.exists():
        rows = load_csv(dataset_path)
        n_var = len(space)
        var_cols = [f"x{i}" for i in range(n_var)]
        metric_cols = [m.canonical_name() for m in metrics]
        X = np.array([[int(r[c]) for c in var_cols] for r in rows], dtype=float)
        Y = np.array([[float(r[c]) for c in metric_cols] for r in rows])
        session.fitness.control.pretrain(X, Y)
        session._pretrained = True

    ckpt_path = directory / "checkpoints.json"
    if ckpt_path.exists():
        from repro.pnr.checkpoints import CheckpointStore

        session.evaluator.sim.checkpoints = CheckpointStore.read(ckpt_path)
    return session
