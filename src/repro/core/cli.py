"""Command-line interface.

Mirrors Dovado's two user flows::

    dovado-repro list-designs
    dovado-repro list-parts
    dovado-repro eval --design corundum-cqm --part XC7K70T \\
        --set OP_TABLE_SIZE=16 --set PIPELINE=3 [--metric LUT:min ...]
    dovado-repro dse  --design tirex --part ZU3EG --generations 15 \\
        --population 24 [--no-model] [--deadline-hours 4] [--out results/]

``--design`` accepts a built-in case-study name; ``--source FILE --top M``
evaluates arbitrary HDL instead (with ``--param NAME:LO:HI[:pow2]``
declaring the space for DSE mode).

The service flow (DSE as a service) multiplexes many sessions over one
shared store and scheduler::

    dovado-repro serve  --root svc/ --capacity 4 &
    dovado-repro submit --root svc/ --design tirex --generations 10
    dovado-repro jobs   --root svc/
    dovado-repro cancel --root svc/ job-000000
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.metrics import MetricSpec
from repro.core.session import DseSession
from repro.core.spaces import IntRange, ParameterSpace, PowerOfTwoRange
from repro.designs import all_designs, get_design
from repro.devices import list_devices
from repro.errors import ReproError
from repro.moo.problem import Sense
from repro.util.tables import render_table

__all__ = ["main", "build_parser"]


def _parse_metric(text: str) -> MetricSpec:
    name, _, sense = text.partition(":")
    sense = sense or "min"
    return MetricSpec(name, Sense.MAXIMIZE if sense == "max" else Sense.MINIMIZE)


def _parse_assignment(text: str) -> tuple[str, int]:
    name, _, value = text.partition("=")
    if not value:
        raise argparse.ArgumentTypeError(f"expected NAME=VALUE, got {text!r}")
    return name, int(value, 0)


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _risk_float(text: str) -> float:
    value = float(text)
    if not 0.0 < value < 1.0:
        raise argparse.ArgumentTypeError(f"must be in (0, 1), got {value}")
    return value


def _parse_dim(text: str):
    parts = text.split(":")
    if len(parts) < 3:
        raise argparse.ArgumentTypeError(
            f"expected NAME:LO:HI[:pow2], got {text!r}"
        )
    name, lo, hi = parts[0], int(parts[1]), int(parts[2])
    if len(parts) > 3 and parts[3] == "pow2":
        return PowerOfTwoRange(name, lo, hi)
    return IntRange(name, lo, hi)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="dovado-repro",
        description="Dovado reproduction: FPGA RTL design automation and DSE.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-designs", help="show built-in case-study designs")
    sub.add_parser("list-parts", help="show the device catalog")

    p_hier = sub.add_parser("hierarchy", help="print the RTL hierarchy of sources")
    p_hier.add_argument("sources", nargs="+", help="HDL source files")
    p_hier.add_argument("--root", help="render only this module's subtree")

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--design", help="built-in design name")
        p.add_argument("--source", help="HDL source file (alternative to --design)")
        p.add_argument("--top", help="top module for --source")
        p.add_argument("--part", default="XC7K70T")
        p.add_argument(
            "--metric", action="append", type=_parse_metric, dest="metrics",
            help="NAME[:min|max]; repeatable (default: LUT:min frequency:max)",
        )
        p.add_argument("--period-ns", type=float, default=1.0)
        p.add_argument("--step", choices=("synthesis", "implementation"),
                       default="implementation")
        p.add_argument("--seed", type=int, default=0)

    p_eval = sub.add_parser("eval", help="evaluate explicit design point(s)")
    add_common(p_eval)
    p_eval.add_argument(
        "--set", action="append", type=_parse_assignment, dest="assignments",
        default=[], help="parameter NAME=VALUE; repeatable",
    )

    p_dse = sub.add_parser(
        "dse", aliases=["explore"],
        help="explore the design space with NSGA-II",
    )
    add_common(p_dse)
    p_dse.add_argument("--generations", type=int, default=15)
    p_dse.add_argument("--population", type=int, default=24)
    p_dse.add_argument("--no-model", action="store_true",
                       help="disable the fitness approximation model")
    p_dse.add_argument("--pretrain", type=int, default=100,
                       help="synthetic dataset size M (default 100)")
    p_dse.add_argument("--deadline-hours", type=float,
                       help="soft deadline in simulated tool hours")
    p_dse.add_argument("--incremental", action="store_true",
                       help="enable the incremental synthesis/implementation flow")
    p_dse.add_argument("--algorithm", default="nsga2",
                       choices=("nsga2", "spea2", "mosa", "exhaustive", "auto"),
                       help="solver: NSGA-II (paper), MOSA, exhaustive, or "
                            "the run-time chooser")
    p_dse.add_argument("--workers", type=_nonnegative_int, default=0,
                       help="persistent process-pool size for population "
                            "evaluation (0 = serial)")
    p_dse.add_argument("--refit-every", type=_nonnegative_int, default=1,
                       help="re-run the LOO bandwidth scan every N dataset "
                            "inserts (default 1 = per insert, 0 = never)")
    p_dse.add_argument("--refit-gamma-drift", type=_positive_float, default=None,
                       help="also rescan when the adaptive threshold drifts "
                            "by this relative fraction")
    p_dse.add_argument("--fidelity-gate", choices=("off", "on"), default="off",
                       help="speculative multi-fidelity evaluation: probe "
                            "each fresh candidate at low fidelity and skip "
                            "route+STA when the learned gate proves the "
                            "point dominated (default off; implementation "
                            "step only; control-model dataset inserts "
                            "always run the full flow, so the gate engages "
                            "on --no-model evaluations)")
    p_dse.add_argument("--gate-risk", type=_risk_float, default=0.05,
                       help="per-metric miss probability the gate's "
                            "conformal error band targets (default 0.05; "
                            "lower = wider band = fewer skips)")
    p_dse.add_argument("--gate-fidelity", default="synth-estimate",
                       choices=("static-estimate", "synth-estimate",
                                "placed-estimate"),
                       help="ladder rung the gate probes at (default "
                            "synth-estimate; static-estimate charges zero "
                            "simulated seconds)")
    p_dse.add_argument("--gate-static-priors", action="store_true",
                       help="feed each gated point's static-estimate bounds "
                            "(rung 0) to the promotion gate as extra "
                            "residual-model features (requires "
                            "--fidelity-gate on)")
    p_dse.add_argument("--drc-netlist", action="store_true",
                       help="extend the DRC pre-flight gate with the "
                            "netlist-structure stage: reject points whose "
                            "elaborated netlist has combinational loops, "
                            "undriven blocks, or multiply-driven nets "
                            "(N001-N003) before any tool run")
    p_dse.add_argument(
        "--param", action="append", type=_parse_dim, dest="dims", default=[],
        help="NAME:LO:HI[:pow2] space dimension (required with --source)",
    )
    p_dse.add_argument("--prune-space", action="store_true",
                       help="statically prune the space before exploring: "
                            "drop dead dimensions, clip value subranges the "
                            "interval analysis proves infeasible")
    p_dse.add_argument("--out", help="directory for JSON/CSV results")
    p_dse.add_argument("--trace", metavar="FILE",
                       help="enable telemetry: write a JSONL trace to FILE "
                            "and print the run summary at session end")
    p_dse.add_argument("--result-store", metavar="PATH",
                       help="persistent cross-run result store directory: "
                            "previously evaluated configurations replay as "
                            "cache answers; fresh tool runs are appended")

    p_lint = sub.add_parser(
        "lint", help="run the design rule checker (CI exit codes: 0/1/2)"
    )
    p_lint.add_argument("sources", nargs="*",
                        help="HDL source files to lint (with --self: an "
                             "optional Python package directory to scan)")
    p_lint.add_argument("--design", help="built-in design name")
    p_lint.add_argument("--self", action="store_true", dest="self_scan",
                        help="run the S-series concurrency/atomicity rules "
                             "over this package's own service layer (or the "
                             "directory given as the positional argument)")
    p_lint.add_argument("--top", help="restrict point checks to this module")
    p_lint.add_argument(
        "--at", action="append", type=_parse_assignment, dest="at",
        default=[], help="parameter NAME=VALUE for the point-aware checks; "
                         "repeatable (default: design defaults + boundary "
                         "points of the declared space)",
    )
    p_lint.add_argument("--strict", action="store_true",
                        help="exit 1 when warnings remain")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format (default text)")
    p_lint.add_argument("--output", help="write the report to this file")
    p_lint.add_argument("--disable", action="append", dest="disabled",
                        default=[], metavar="CODE",
                        help="disable a rule code; repeatable")
    p_lint.add_argument("--baseline", help="baseline suppression file (JSON)")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="write current findings to --baseline and exit 0")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    p_lint.add_argument("--no-box", action="store_true",
                        help="skip the boxing-wrapper rules (B codes)")
    p_lint.add_argument("--netlist", action="store_true",
                        help="also elaborate each checked point and run the "
                             "netlist-structure rules (N codes)")
    p_lint.add_argument("--part", default="XC7K70T",
                        help="device for the netlist rules' derived "
                             "thresholds (default XC7K70T)")
    p_lint.add_argument("--period-ns", type=_positive_float, default=10.0,
                        help="target clock period for the N005 achievable-"
                             "depth threshold (default 10.0)")
    p_lint.add_argument("--default-point", action="store_true",
                        help="point-aware checks run only at the module's "
                             "default parameter binding (skip the boundary-"
                             "point sweep)")

    p_sweep = sub.add_parser(
        "sweep", help="exact-set evaluation of a cartesian parameter grid"
    )
    add_common(p_sweep)
    p_sweep.add_argument(
        "--grid", action="append", dest="grids", default=[],
        help="NAME=V1,V2,V3 value list; repeatable (cartesian product)",
    )
    p_sweep.add_argument("--workers", type=_nonnegative_int, default=0,
                         help="process-pool size (0 = serial)")
    p_sweep.add_argument("--csv", help="write the sweep rows to this CSV file")
    p_sweep.add_argument("--trace", metavar="FILE",
                         help="enable telemetry: write a JSONL trace to FILE "
                              "and print the run summary at session end")
    p_sweep.add_argument("--result-store", metavar="PATH",
                         help="persistent cross-run result store directory: "
                              "previously evaluated configurations replay as "
                              "cache answers; fresh tool runs are appended")

    p_stats = sub.add_parser(
        "stats", help="summarize a JSONL telemetry trace (from --trace)"
    )
    p_stats.add_argument("trace", help="trace file to summarize")

    p_cache = sub.add_parser(
        "cache", help="inspect or maintain a persistent result store"
    )
    p_cache.add_argument("action", choices=("stats", "clear", "export", "compact"),
                         help="stats: shape + hit tallies; clear: drop every "
                              "record; export: merge to one JSONL file; "
                              "compact: rewrite segments keeping only index "
                              "winners (superseded/duplicate records dropped)")
    p_cache.add_argument("--store", required=True, metavar="PATH",
                         help="result store directory (flat or sharded — "
                              "the MANIFEST decides)")
    p_cache.add_argument("--out", metavar="FILE",
                         help="output file for export "
                              "(default: <store>/export.jsonl)")

    p_serve = sub.add_parser(
        "serve", help="run the DSE service: claim queued jobs, multiplex "
                      "their evaluations over one shared store + scheduler"
    )
    p_serve.add_argument("--root", required=True, metavar="DIR",
                         help="service root (queue/, store/, results/ live "
                              "here; touch <root>/STOP for graceful drain)")
    p_serve.add_argument("--capacity", type=int, default=4,
                         help="evaluation worker threads shared by all jobs "
                              "(default 4)")
    p_serve.add_argument("--shards", type=int, default=8,
                         help="shard count when creating the shared store "
                              "(default 8; an existing store keeps its own)")
    p_serve.add_argument("--slots", type=int, default=2,
                         help="max concurrent evaluations per job (default 2)")
    p_serve.add_argument("--max-idle", type=_positive_float, default=None,
                         metavar="SECONDS",
                         help="exit after the queue stays empty this long "
                              "(default: run until STOP)")
    p_serve.add_argument("--stop-after", type=_nonnegative_int, default=None,
                         metavar="N", help="exit once N jobs finished (smoke "
                                           "tests; default: run until STOP)")
    p_serve.add_argument("--poll-interval", type=_positive_float, default=0.2,
                         metavar="SECONDS",
                         help="queue poll period (default 0.2; also the "
                              "admission stagger between job claims)")
    p_serve.add_argument("--admission", choices=("fixed", "adaptive"),
                         default="fixed",
                         help="claim-admission mode: 'fixed' claims one job "
                              "per poll tick; 'adaptive' runs an AIMD claim "
                              "budget over fleet utilization + warm-hit "
                              "ratio and wakes on queue submits instead of "
                              "polling (default fixed)")
    p_serve.add_argument("--max-claim", type=_positive_int, default=8,
                         metavar="N",
                         help="adaptive mode: claim-budget ceiling per pass "
                              "(default 8)")
    p_serve.add_argument("--admission-backoff", type=float, default=0.5,
                         metavar="FACTOR",
                         help="adaptive mode: multiplicative budget decrease "
                              "on saturation, in (0, 1) (default 0.5)")
    p_serve.add_argument("--no-coalesce", action="store_true",
                         help="disable single-flight coalescing of identical "
                              "in-flight evaluations across tenants")
    p_serve.add_argument("--trace", metavar="FILE",
                         help="enable telemetry: write a JSONL trace to FILE "
                              "and print the summary at shutdown")

    p_submit = sub.add_parser(
        "submit", help="enqueue a DSE job for a running server"
    )
    p_submit.add_argument("--root", required=True, metavar="DIR",
                          help="service root (same as serve --root)")
    p_submit.add_argument("--design", required=True,
                          help="built-in design name to explore")
    p_submit.add_argument("--part", default="XC7K70T")
    p_submit.add_argument("--period-ns", type=_positive_float, default=1.0)
    p_submit.add_argument("--seed", type=int, default=0)
    p_submit.add_argument("--generations", type=int, default=15)
    p_submit.add_argument("--population", type=int, default=24)
    p_submit.add_argument("--use-model", action="store_true",
                          help="enable the fitness approximation model")
    p_submit.add_argument("--pretrain", type=_nonnegative_int, default=0,
                          help="synthetic dataset size M (with --use-model)")
    p_submit.add_argument("--algorithm", default="nsga2",
                          choices=("nsga2", "spea2", "mosa", "exhaustive"))
    p_submit.add_argument("--deadline-hours", type=_positive_float, default=None,
                          help="soft deadline in simulated tool hours")

    p_jobs = sub.add_parser("jobs", help="list the service's jobs and states")
    p_jobs.add_argument("--root", required=True, metavar="DIR",
                        help="service root (same as serve --root)")

    p_cancel = sub.add_parser("cancel", help="cancel a queued or running job")
    p_cancel.add_argument("--root", required=True, metavar="DIR",
                          help="service root (same as serve --root)")
    p_cancel.add_argument("job_id", help="the id `submit` printed")
    return parser


def _make_session(args: argparse.Namespace, need_space: bool) -> DseSession:
    from repro.flow.vivado_sim import FlowStep

    common = dict(
        part=args.part,
        metrics=args.metrics,
        target_period_ns=args.period_ns,
        step=FlowStep(args.step),
        seed=args.seed,
        refit_every=getattr(args, "refit_every", 1),
        refit_gamma_drift=getattr(args, "refit_gamma_drift", None),
        result_store=getattr(args, "result_store", None),
        fidelity_gate=getattr(args, "fidelity_gate", "off") == "on",
        gate_risk=getattr(args, "gate_risk", 0.05),
        gate_fidelity=getattr(args, "gate_fidelity", "synth-estimate"),
        gate_static_priors=getattr(args, "gate_static_priors", False),
        drc_netlist=getattr(args, "drc_netlist", False),
    )
    if args.design:
        return DseSession(design=get_design(args.design), **common)
    if not args.source or not args.top:
        raise SystemExit("either --design or (--source and --top) is required")
    source = Path(args.source).read_text(encoding="utf-8")
    from repro.hdl.frontend import detect_language

    language = str(detect_language(args.source, source))
    dims = getattr(args, "dims", [])
    if need_space and not dims:
        raise SystemExit("--param NAME:LO:HI[:pow2] is required with --source in dse mode")
    space = ParameterSpace(dims) if dims else ParameterSpace(
        [IntRange("__dummy", 0, 0)]
    )
    return DseSession(
        source=source, language=language, top=args.top, space=space, **common
    )


def _netlist_sweep(checker, modules, points, part: str, period_ns: float):
    """N-rule findings for each (module, point) pair of the lint sweep.

    Points the elaborator refuses outright are skipped here — the
    elaboration-stage rules (P codes) in the same sweep own those
    diagnostics, and a netlist that never existed has no structure to
    check.
    """
    from repro.analysis.findings import CheckResult
    from repro.devices import get_device
    from repro.errors import ElaborationError

    device = get_device(part)
    merged = CheckResult(())
    for module in modules:
        for point in points:
            try:
                result = checker.check_netlist(
                    module, point, device=device, target_period_ns=period_ns
                )
            except ElaborationError:
                continue
            merged = merged.merged(result)
    return merged


def _lint(args: argparse.Namespace) -> int:
    """The ``lint`` subcommand: DRC sweep with CI-grade output.

    Exit codes: 0 clean, 1 warnings under ``--strict``, 2 errors.
    """
    from repro.analysis import (
        DesignRuleChecker,
        RuleConfig,
        all_rules,
        exit_code,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )

    if args.list_rules:
        rows = [
            (r.code, str(r.severity), str(r.stage), r.name, r.description)
            for r in all_rules()
        ]
        print(render_table(("Code", "Severity", "Stage", "Name", "Description"),
                           rows))
        return 0

    baseline: frozenset[str] = frozenset()
    if args.baseline and not args.update_baseline and Path(args.baseline).exists():
        baseline = load_baseline(args.baseline)
    checker = DesignRuleChecker(
        RuleConfig(disabled=frozenset(args.disabled), baseline=baseline)
    )
    points = [dict(args.at)] if args.at else None
    if points is None and args.default_point:
        points = [{}]
    boxed = not args.no_box

    if args.self_scan:
        from repro.analysis import collect_py_sources

        root = Path(args.sources[0]) if args.sources else None
        result = checker.check_python(collect_py_sources(root))
    elif args.design:
        gen = get_design(args.design)
        source = gen.source()
        from repro.hdl.frontend import parse_source

        modules = parse_source(source, gen.language)
        space = ParameterSpace.from_design(gen)
        result = checker.check_design(
            gen.module(),
            space=space,
            sources=((source, str(gen.language)),),
            known_modules=[m.name for m in modules],
            points=points,
            boxed=boxed,
        )
        if args.netlist:
            from repro.analysis.checker import boundary_points

            point_list = points if points is not None else boundary_points(space)
            result = result.merged(_netlist_sweep(
                checker, [gen.module()], point_list, args.part, args.period_ns
            ))
    elif args.sources:
        from repro.hdl.frontend import detect_language, parse_source

        texts: list[tuple[str, str]] = []
        all_modules = []
        for path in args.sources:
            text = Path(path).read_text(encoding="utf-8")
            language = detect_language(path, text)
            texts.append((text, str(language)))
            all_modules.extend(parse_source(text, language))
        known = [m.name for m in all_modules]
        if args.top:
            selected = [
                m for m in all_modules if m.name.lower() == args.top.lower()
            ]
            if not selected:
                raise SystemExit(f"top {args.top!r} not found in sources")
        else:
            selected = all_modules
        result = checker.check_sources(texts, known_modules=known)
        for module in selected:
            result = result.merged(checker.check_interface(module))
            result = result.merged(
                checker.check_dataflow(module, sources=texts)
            )
            for point in points or [{}]:
                result = result.merged(
                    checker.check_point(module, point, boxed=boxed)
                )
        if args.netlist:
            result = result.merged(_netlist_sweep(
                checker, selected, points or [{}], args.part, args.period_ns
            ))
    else:
        raise SystemExit("either --design or HDL source files are required")

    findings = list(result.findings)
    if args.update_baseline:
        if not args.baseline:
            raise SystemExit("--update-baseline requires --baseline FILE")
        path = write_baseline(args.baseline, findings)
        print(f"baseline written: {path} ({len(findings)} suppression(s))")
        return 0

    renderer = {
        "text": render_text, "json": render_json, "sarif": render_sarif,
    }[args.format]
    report = renderer(findings)
    if args.output:
        Path(args.output).write_text(report, encoding="utf-8")
        print(f"report written: {args.output}")
    else:
        print(report, end="")
    return exit_code(findings, strict=args.strict)


def _start_trace(args: argparse.Namespace):
    """Enable telemetry when ``--trace`` was given; returns the bundle."""
    if not getattr(args, "trace", None):
        return None
    from repro.observe import enable_telemetry

    return enable_telemetry()


def _finish_trace(tel, args: argparse.Namespace, command: str) -> None:
    """Write the trace file, print the summary, and turn telemetry off.

    Runs in a ``finally`` so a failed run still leaves a valid trace.
    """
    from repro.observe import disable_telemetry, render_summary, write_trace

    meta = {
        k: v
        for k, v in {
            "command": command,
            "design": getattr(args, "design", None),
            "source": getattr(args, "source", None),
            "part": getattr(args, "part", None),
            "seed": getattr(args, "seed", None),
        }.items()
        if v is not None
    }
    try:
        path = write_trace(args.trace, tel, meta=meta)
        print()
        print(render_summary(tel, meta=meta))
        print(f"\ntrace written: {path}")
    finally:
        disable_telemetry()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list-designs":
        rows = [
            (name, gen.top, str(gen.language),
             ", ".join(f"{p.name}[{p.low}..{p.high}{'^2' if p.power_of_two else ''}]"
                       for p in gen.params))
            for name, gen in sorted(all_designs().items())
        ]
        print(render_table(("Design", "Top", "Language", "Parameters"), rows))
        return 0

    if args.command == "list-parts":
        rows = [
            (d.part, d.family, d.process, d.resources.get("LUT"),
             d.resources.get("FF"), d.resources.get("BRAM"), d.resources.get("DSP"))
            for d in list_devices()
        ]
        print(render_table(
            ("Part", "Family", "Process", "LUT", "FF", "BRAM", "DSP"), rows
        ))
        return 0

    if args.command == "hierarchy":
        from repro.hdl.frontend import detect_language, parse_file
        from repro.hdl.hierarchy import build_hierarchy

        sources = []
        known: list[str] = []
        for path in args.sources:
            text = Path(path).read_text(encoding="utf-8")
            language = detect_language(path, text)
            sources.append((text, language))
            known.extend(m.name for m in parse_file(path).modules)
        hierarchy = build_hierarchy(sources, known_modules=known)
        roots = [args.root] if args.root else hierarchy.top_candidates()
        for root in roots:
            print(hierarchy.render(root))
            print()
        return 0

    if args.command == "lint":
        return _lint(args)

    if args.command == "eval":
        session = _make_session(args, need_space=False)
        params = dict(args.assignments)
        point = session.evaluator.evaluate(params)
        print(point)
        print()
        print(session.evaluator.last_reports.get("utilization", ""))
        print()
        print(session.evaluator.last_reports.get("timing", ""))
        return 0

    if args.command == "stats":
        from repro.observe import read_trace, render_trace_summary

        print(render_trace_summary(read_trace(args.trace)))
        return 0

    if args.command == "cache":
        from repro.cache import open_store

        store = open_store(args.store)
        if args.action == "stats":
            from repro.cache import FIDELITY_RANKS

            rank_names = {rank: name for name, rank in FIDELITY_RANKS.items()}
            stats = store.stats()
            kinds: dict[str, int] = {}
            fidelities: dict[str, int] = {}
            for record in store.records():
                kinds[record.kind] = kinds.get(record.kind, 0) + 1
                name = rank_names.get(record.rank, f"rank-{record.rank}")
                fidelities[name] = fidelities.get(name, 0) + 1
            rows = [(k, v) for k, v in sorted(stats.as_dict().items())]
            rows += [(f"kind:{k}", v) for k, v in sorted(kinds.items())]
            rows += [(f"fidelity:{k}", v) for k, v in sorted(fidelities.items())]
            print(render_table(("Field", "Value"), rows,
                               title=f"Result store: {store.root}"))
        elif args.action == "clear":
            dropped = store.clear()
            print(f"cleared: {dropped} unique key(s) dropped")
        elif args.action == "compact":
            result = store.compact()
            print(f"compacted: {result.records_before} -> "
                  f"{result.records_after} record(s), "
                  f"{result.segments_before} -> {result.segments_after} "
                  f"segment(s), {result.bytes_before} -> "
                  f"{result.bytes_after} bytes")
        else:  # export
            out = args.out or str(Path(args.store) / "export.jsonl")
            path = store.export(out)
            print(f"exported: {path} ({len(store)} unique key(s))")
        return 0

    if args.command == "serve":
        from repro.serve import DseServer, make_admission

        server = DseServer(
            args.root,
            capacity=args.capacity,
            shards=args.shards,
            slots_per_job=args.slots,
            poll_interval_s=args.poll_interval,
            admission=make_admission(
                args.admission,
                args.poll_interval,
                max_claim=args.max_claim,
                backoff=args.admission_backoff,
            ),
            coalesce=not args.no_coalesce,
        )
        tel = _start_trace(args)
        print(f"serving from {args.root} "
              f"(capacity={args.capacity}, shards={args.shards}, "
              f"admission={args.admission}; "
              f"touch {Path(args.root) / 'STOP'} to drain)")
        try:
            stats = server.serve_forever(
                max_idle_s=args.max_idle, stop_after=args.stop_after
            )
        finally:
            if tel is not None:
                _finish_trace(tel, args, "serve")
        fleet = stats["fleet"]
        print(f"drained: done={stats['jobs_done']} "
              f"failed={stats['jobs_failed']} "
              f"cancelled={stats['jobs_cancelled']} | fleet: "
              f"tool_runs={fleet['dispatched']} "
              f"memo_hits={fleet['memo_hits']} "
              f"store_hits={fleet['store_hits']} "
              f"coalesced={stats['coalesced_hits']}")
        return 1 if stats["jobs_failed"] else 0

    if args.command == "submit":
        from repro.serve import FileJobQueue, JobSpec

        record = FileJobQueue(Path(args.root) / "queue").submit(JobSpec(
            design=args.design,
            seed=args.seed,
            generations=args.generations,
            population=args.population,
            pretrain=args.pretrain,
            use_model=args.use_model,
            algorithm=args.algorithm,
            part=args.part,
            target_period_ns=args.period_ns,
            soft_deadline_s=(
                args.deadline_hours * 3600 if args.deadline_hours else None
            ),
        ))
        print(record.job_id)
        return 0

    if args.command == "jobs":
        from repro.serve import FileJobQueue

        rows = []
        for record in FileJobQueue(Path(args.root) / "queue").jobs():
            stats = record.stats
            hits = stats.get("cache_hits")
            rows.append((
                record.job_id,
                record.spec.design,
                str(record.state),
                stats.get("tool_runs", ""),
                "" if hits is None else hits,
                ("" if hits is None
                 else f"{stats.get('cache_hit_rate', 0.0):.0%}"),
                record.error or "",
            ))
        print(render_table(
            ("Job", "Design", "State", "Tool runs", "Cache hits",
             "Hit rate", "Error"),
            rows,
        ))
        return 0

    if args.command == "cancel":
        from repro.serve import FileJobQueue

        state = FileJobQueue(Path(args.root) / "queue").cancel(args.job_id)
        if state is None:
            print(f"unknown job: {args.job_id}", file=sys.stderr)
            return 1
        print(f"{args.job_id}: {state}")
        return 0

    if args.command == "sweep":
        from repro.core.sweep import grid as make_grid, run_sweep

        session = _make_session(args, need_space=False)
        values: dict[str, list[int]] = {}
        for spec in args.grids:
            name, _, rest = spec.partition("=")
            if not rest:
                raise SystemExit(f"--grid expects NAME=V1,V2,..., got {spec!r}")
            values[name] = [int(v, 0) for v in rest.split(",") if v]
        if not values:
            raise SystemExit("at least one --grid NAME=V1,V2,... is required")
        points = make_grid(**values)
        tel = _start_trace(args)
        try:
            result = run_sweep(
                session.evaluator, points, workers=args.workers,
                design_name=args.design, result_store=args.result_store,
            )
        finally:
            if tel is not None:
                _finish_trace(tel, args, "sweep")
        print(result.to_table(
            title=f"Sweep: {len(result)} configurations "
                  f"({result.total_simulated_seconds() / 3600:.2f} tool-hours)"
        ))
        front = result.pareto()
        print(f"\nPareto subset: {len(front)} points")
        if args.csv:
            path = result.save_csv(args.csv)
            print(f"saved: {path}")
        return 0

    if args.command in ("dse", "explore"):
        session = _make_session(args, need_space=True)
        if getattr(args, "prune_space", False):
            report = session.apply_static_pruning()
            print(report.render())
        session.fitness.use_model = not args.no_model
        session.fitness.pretrain_size = args.pretrain
        deadline = args.deadline_hours * 3600 if args.deadline_hours else None
        # Telemetry must be on before the session evaluates anything (the
        # worker pool freezes the enablement state when it starts).
        tel = _start_trace(args)
        try:
            result = session.explore(
                generations=args.generations,
                population=args.population,
                soft_deadline_s=deadline,
                algorithm=args.algorithm,
                workers=args.workers,
            )
        finally:
            session.close()
            if tel is not None:
                _finish_trace(tel, args, "dse")
        if session.last_algorithm_choice is not None:
            print(f"algorithm choice: {session.last_algorithm_choice.name} "
                  f"({session.last_algorithm_choice.reason})")
        metric_names = session.evaluator.metric_names()
        param_names = session.space.names()
        rows = [
            tuple(p.parameters[n] for n in param_names)
            + tuple(round(p.metrics[m], 2) for m in metric_names)
            for p in result.pareto
        ]
        print(render_table(
            tuple(param_names) + tuple(metric_names), rows,
            title=f"Non-dominated set ({len(result.pareto)} points)",
        ))
        print()
        print(f"evaluations={result.evaluations} tool_runs={result.tool_runs} "
              f"simulated={result.simulated_seconds/3600:.2f} tool-hours")
        stats = result.stats
        fid_runs = {
            k.split(":", 1)[1]: v
            for k, v in stats.items()
            if k.startswith("runs:") and v
        }
        print(f"stage hits: synth={stats.get('synth_stage_hits', 0)} "
              f"impl={stats.get('impl_stage_hits', 0)}"
              + (" | runs: " + " ".join(f"{k}={v}"
                                        for k, v in sorted(fid_runs.items()))
                 if fid_runs else ""))
        if stats.get("gate_promoted", 0) or stats.get("gate_skipped", 0):
            print(f"fidelity gate: promoted={stats.get('gate_promoted', 0)} "
                  f"skipped={stats.get('gate_skipped', 0)} "
                  f"trickled={stats.get('gate_trickled', 0)}")
        if args.out:
            path = result.save(args.out)
            print(f"saved: {path}")
        return 0

    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
