"""The DSE fitness function, with and without the approximation model.

:class:`ApproximateFitness` adapts a :class:`~repro.core.evaluate.
PointEvaluator` into the batch-evaluation interface NSGA-II consumes,
routing every proposed point through the control model's three cases
(cache / estimate / real run).  It also accounts cost: real runs charge
the tool's simulated seconds, estimates charge a fixed small cost (the
NWM is "cheap computational cost" per the paper), cached hits charge the
tool's cache-answer overhead.

With ``use_model=False`` the class degrades to direct evaluation — the
configuration used for the Corundum/Neorv32/TiReX experiments ("disabling
the approximator model to employ direct Vivado evaluations").
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from repro.analysis.gate import PreflightGate
from repro.cache import (
    FULL_RANK,
    KIND_FAILURE,
    KIND_POINT,
    ResultStore,
    decode_point,
    encode_failure,
    encode_point,
    fidelity_rank,
    point_key,
    run_identity,
)
from repro.core.evaluate import PointEvaluator
from repro.core.point import EvaluatedPoint
from repro.core.spaces import ParameterSpace
from repro.errors import ReproError
from repro.estimation import (
    ControlModel,
    Dataset,
    Decision,
    PromotionGate,
    RefitPolicy,
)
from repro.flow.vivado_sim import Fidelity, FlowStep
from repro.moo.problem import IntegerProblem, Objective, Sense
from repro.moo.sampling import IntegerRandomSampling
from repro.observe import current_telemetry
from repro.util.rng import as_generator

__all__ = ["ApproximateFitness", "DseProblem", "PendingEncodedBatch"]

# Cost model for non-tool answers (simulated seconds).
_ESTIMATE_COST_S = 0.2
_CACHE_HIT_COST_S = 2.0


class ApproximateFitness:
    """Routes design-point evaluations through the control model."""

    def __init__(
        self,
        evaluator: PointEvaluator,
        space: ParameterSpace,
        use_model: bool = True,
        pretrain_size: int = 100,     # the paper's M default
        min_points_to_estimate: int = 4,
        seed: int = 0,
        workers: int = 0,
        design_name: str | None = None,
        refit_policy: RefitPolicy | None = None,
        result_store: ResultStore | str | Path | None = None,
        fidelity_gate: bool = False,
        gate_risk: float = 0.05,
        gate_fidelity: Fidelity | str = Fidelity.SYNTH_ESTIMATE,
        gate_min_calibration: int = 5,
        gate_trickle_every: int = 8,
        gate_static_priors: bool = False,
        drc_netlist: bool = False,
    ) -> None:
        self.evaluator = evaluator
        self.space = space
        self.use_model = use_model
        self.pretrain_size = pretrain_size
        self.seed = seed
        self.workers = workers
        self.design_name = design_name
        if isinstance(result_store, (str, Path)):
            from repro.cache import open_store

            # A path may point at either layout — flat or sharded (the
            # server's shared stores are sharded); the MANIFEST decides.
            result_store = open_store(result_store)
        self.result_store = result_store
        self._store_identity_cache: dict | None = None
        self.min_points_to_estimate = min_points_to_estimate
        self.refit_policy = refit_policy or RefitPolicy()
        self.control = ControlModel(
            dataset=Dataset(
                n_var=len(space), metric_names=evaluator.metric_names()
            ),
            min_points_to_estimate=min_points_to_estimate,
            refit_policy=self.refit_policy,
        )
        # Space-aware DRC pre-flight gate: in addition to the evaluator's
        # own point-level checks this one validates proposed values against
        # the declared parameter space, and it lets the model-active path
        # reject a point before the control model even sees it.
        self.drc_netlist = bool(drc_netlist)
        self.gate = PreflightGate(
            evaluator.module,
            space=space,
            boxed=evaluator.boxed,
            clock_port=evaluator.clock_port,
            netlist_stage=self.drc_netlist,
        )
        self.history: list[EvaluatedPoint] = []
        self.simulated_seconds = 0.0
        self.infeasible = 0
        self.drc_rejections = 0
        self.mse_trace: list[tuple[int, float]] = []  # (dataset size, LOO MSE)
        self._parallel = None  # lazy ParallelPointEvaluator
        # True when ``_parallel`` was injected via ``set_batch_evaluator``
        # (a server-owned fleet facade): never closed here, and it takes
        # over every tool dispatch regardless of the local worker count.
        self._external_parallel = False
        # Speculative fidelity gate (off by default; when off, every code
        # path below is byte-identical to the pre-ladder fitness).
        self.fidelity_gate_enabled = bool(fidelity_gate)
        self.gate_risk = float(gate_risk)
        self.gate_fidelity = Fidelity(gate_fidelity)
        self.gate_min_calibration = int(gate_min_calibration)
        self.gate_trickle_every = int(gate_trickle_every)
        self.promotion_gate: PromotionGate | None = None
        # Frozen binding -> (encoded row, probe minimized metrics): points
        # the gate skipped, awaiting promotion-on-demand if they survive
        # into the archive.
        self._speculative: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        # Frozen binding -> raw metric vector already answered by the gated
        # path (replays are cache-priced, like the tool's own run cache).
        self._gate_memo: dict[tuple, np.ndarray] = {}
        # Opt-in static-estimate priors for the promotion gate: each gated
        # point contributes its zero-cost analytical bounds (rung 0 of the
        # ladder) as extra residual-model features.  Frozen binding ->
        # normalized feature row, memoized because assess/observe/promote
        # must all see the identical vector for one binding.
        self.gate_static_priors = bool(gate_static_priors)
        self._prior_cache: dict[tuple, np.ndarray] = {}
        if self.gate_static_priors and not fidelity_gate:
            raise ValueError("gate_static_priors requires fidelity_gate=True")
        if self.fidelity_gate_enabled:
            if evaluator.step != FlowStep.IMPLEMENTATION:
                raise ValueError(
                    "fidelity_gate requires step=IMPLEMENTATION: synthesis-only "
                    "evaluations already are the lowest ladder rung"
                )
            if self.gate_fidelity is Fidelity.FULL_ROUTE:
                raise ValueError("gate_fidelity must be a lower rung than full-route")
            self.promotion_gate = PromotionGate(
                signs=self._metric_signs(),
                risk=self.gate_risk,
                min_calibration=self.gate_min_calibration,
                trickle_every=self.gate_trickle_every,
            )

    # ------------------------------------------------------------------
    # Parallel fan-out

    def set_workers(self, workers: int) -> None:
        """Resize the tool fan-out (rebuilds the pool on next batch)."""
        if workers != self.workers:
            self.close()
            self.workers = workers

    def set_batch_evaluator(self, evaluator) -> None:
        """Bind an externally owned batch evaluator (the serve fleet).

        ``evaluator`` must expose the :class:`ParallelPointEvaluator`
        batch surface (``submit_many`` returning a pending batch).  Once
        bound, *every* tool dispatch — batch and single-point alike —
        routes through it, so a multi-tenant scheduler sees all of this
        session's work.  The caller keeps ownership: :meth:`close` drops
        the reference without shutting the evaluator down.  Pass ``None``
        to unbind.  Incompatible with the fidelity gate and incremental
        flows, whose evaluations are order-dependent by construction.
        """
        if evaluator is not None:
            if self.fidelity_gate_enabled:
                raise ValueError(
                    "external batch evaluator is incompatible with the "
                    "fidelity gate (gated sessions are sequential)"
                )
            if getattr(self.evaluator, "incremental", False):
                raise ValueError(
                    "external batch evaluator is incompatible with "
                    "incremental flows (results are order-dependent)"
                )
        if self._parallel is not None and not self._external_parallel:
            self._parallel.close()
        self._parallel = evaluator
        self._external_parallel = evaluator is not None

    def close(self) -> None:
        """Release the worker pool, if one was started.

        An externally bound evaluator (``set_batch_evaluator``) is only
        unbound — its owner decides when the shared fleet shuts down.
        """
        if self._parallel is not None:
            if not self._external_parallel:
                self._parallel.close()
            self._parallel = None
            self._external_parallel = False

    def _use_parallel(self) -> bool:
        # Incremental flows warm-start from the shared session's
        # checkpoints; worker-local sessions would diverge from the serial
        # reference, so the batch path only engages for pure evaluators.
        # The fidelity gate is sequential by construction — each decision
        # conditions on the calibration set the previous points built — so
        # it also pins evaluation to the serial path.
        if self.fidelity_gate_enabled:
            return False
        if getattr(self.evaluator, "incremental", False):
            return False
        return self._external_parallel or self.workers > 1

    def _metric_signs(self) -> np.ndarray:
        """+1 for minimized metrics, -1 for maximized (minimized = signs*raw)."""
        return np.array(
            [
                -1.0 if spec.sense == Sense.MAXIMIZE else 1.0
                for spec in self.evaluator.metrics
            ]
        )

    def _parallel_evaluator(self):
        if self._parallel is None:
            from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator

            self._parallel = ParallelPointEvaluator(
                spec=EvaluatorSpec.from_evaluator(
                    self.evaluator, design_name=self.design_name
                ),
                workers=self.workers,
                store=self.result_store,
            )
        return self._parallel

    # ------------------------------------------------------------------
    # Persistent result store (serial path; the batch path goes through
    # ParallelPointEvaluator, which owns the same consult/append logic)

    def _store_identity(self) -> dict | None:
        """Store namespace of the serial evaluator (None = store off).

        Must be byte-identical to the identity
        :class:`~repro.core.parallel.ParallelPointEvaluator` derives from
        its spec, so serial and fanned-out runs share store entries.
        Incremental flows are order-dependent and never use the store.
        """
        if self.result_store is None or getattr(self.evaluator, "incremental", False):
            return None
        if self._store_identity_cache is None:
            ev = self.evaluator
            self._store_identity_cache = run_identity(
                source=ev.source_text,
                language=str(ev.language),
                top=ev.module.name,
                part=ev.part,
                step=str(ev.step),
                synth_directive=str(ev.directives.synth),
                impl_directive=str(ev.directives.impl),
                target_period_ns=ev.target_period_ns,
                seed=ev.seed,
                metrics=tuple(
                    (s.canonical_name(), str(s.sense)) for s in ev.metrics
                ),
                boxed=ev.boxed,
            )
        return self._store_identity_cache

    def _store_lookup(
        self, params: dict[str, int]
    ) -> tuple[str | None, "object | None"]:
        """(point key, stored record) — either may be None."""
        identity = self._store_identity()
        if identity is None:
            return None, None
        key = point_key(identity, params)
        return key, self.result_store.get(key)

    def _store_append(
        self,
        key: str | None,
        point: EvaluatedPoint | None = None,
        error_type: str | None = None,
        message: str = "",
        charge_s: float = 0.0,
        rank: int = FULL_RANK,
    ) -> None:
        if key is None or self.result_store is None:
            return
        stored = False
        if point is not None:
            stored = self.result_store.put(
                key, KIND_POINT, encode_point(point), rank=rank
            )
        elif error_type is not None and error_type != "DrcViolationError":
            # DRC rejections are recomputed locally at zero cost and are
            # rule-dependent, not flow-dependent — never persisted.
            stored = self.result_store.put(
                key,
                KIND_FAILURE,
                encode_failure(error_type, message, charge_s),
                rank=rank,
            )
        if stored:
            tel = current_telemetry()
            if tel is not None:
                tel.counters.inc("cache.store_put")

    # ------------------------------------------------------------------

    def pretrain(self, rng: np.random.Generator | int | None = None) -> int:
        """Generate the synthetic dataset: M distinct random tool runs.

        Returns the number of points actually evaluated (the space may be
        smaller than M).
        """
        if not self.use_model or self.pretrain_size <= 0:
            return 0
        rng = as_generator(self.seed if rng is None else rng)
        problem_stub = _BoundsOnly(self.space)
        sample = IntegerRandomSampling(unique=True)(
            problem_stub, min(self.pretrain_size, self.space.cardinality()), rng
        )
        if self._use_parallel():
            self._run_tool_batch(sample.X, record=True)
        else:
            for row in sample.X:
                self._run_tool(row, record=True)
        return int(sample.X.shape[0])

    # ------------------------------------------------------------------

    def _metric_vector(self, point: EvaluatedPoint) -> np.ndarray:
        return np.array(
            [point.metrics[name] for name in self.evaluator.metric_names()],
            dtype=float,
        )

    def _penalty_vector(self) -> np.ndarray:
        """Worst-case metrics for infeasible points (capacity overflow etc.).

        A run the tool rejects — pin/resource overflow, unroutable design —
        still consumes DSE budget in reality; here it yields a vector that
        every feasible point dominates, so NSGA-II steers away without the
        session aborting.
        """
        out = np.empty(len(self.evaluator.metrics))
        for j, spec in enumerate(self.evaluator.metrics):
            out[j] = 0.0 if spec.sense == Sense.MAXIMIZE else 1e12
        return out

    def _note_failure(
        self,
        params: dict[str, int],
        error_type: str,
        charge_s: float | None = None,
        record_ledger: bool = False,
    ) -> np.ndarray:
        """Bookkeeping for an infeasible run (shared serial/batch path).

        Points the DRC pre-flight gate rejected never touched the tool, so
        they enter history as zero-cost ``source="drc"`` records; points
        the tool itself rejected (capacity overflow, unroutable) keep the
        ``infeasible:TYPE`` source and charge the *partial* tool time the
        failed run actually spent (``charge_s``, floored at the tool's
        cache-answer overhead) — Vivado errors late, and a failed point is
        not free against the soft deadline.

        ``record_ledger`` is set only by call sites where no lower layer
        (evaluator, worker, parallel memo) has already written the point's
        ledger record — every evaluated point gets exactly one.
        """
        self.infeasible += 1
        if error_type == "DrcViolationError":
            source = "drc"
            cost = 0.0
            self.drc_rejections += 1
        else:
            source = f"infeasible:{error_type}"
            cost = max(_CACHE_HIT_COST_S, charge_s or 0.0)
            self.simulated_seconds += cost
        tel = current_telemetry()
        if tel is not None:
            tel.counters.add("budget.charged_s", cost)
            if record_ledger:
                tel.ledger.append(
                    params=params,
                    outcome="drc" if source == "drc" else "failed",
                    charge=0.0 if source == "drc" else (charge_s or 0.0),
                    error_type=error_type,
                )
        self.history.append(
            EvaluatedPoint(
                parameters=params,
                metrics=dict(
                    zip(
                        self.evaluator.metric_names(),
                        map(float, self._penalty_vector()),
                    )
                ),
                source=source,
                simulated_seconds=cost,
            )
        )
        return self._penalty_vector()

    def _note_point(
        self, encoded: np.ndarray, point: EvaluatedPoint, record: bool
    ) -> np.ndarray:
        """Bookkeeping for a completed run (shared serial/batch path)."""
        self.history.append(point)
        cost = max(point.simulated_seconds, _CACHE_HIT_COST_S)
        self.simulated_seconds += cost
        tel = current_telemetry()
        if tel is not None:
            tel.counters.add("budget.charged_s", cost)
        y = self._metric_vector(point)
        if record and self.use_model:
            self.control.record(np.asarray(encoded, dtype=float), y)
            if np.isfinite(self.control.last_loo_mse):
                self.mse_trace.append(
                    (len(self.control.dataset), self.control.last_loo_mse)
                )
        return y

    def _run_tool(self, encoded: np.ndarray, record: bool) -> np.ndarray:
        # Dataset inserts (``record=True``: pretrain, control-model
        # evaluations) always run the full flow — the NWM must train on
        # authoritative numbers — so the gate engages only for plain
        # fitness evaluations.
        if self.promotion_gate is not None and not record:
            return self._run_tool_gated(encoded)
        # A server-bound session must surface *every* tool dispatch to the
        # shared fleet — including the model path's single-point runs —
        # so cross-tenant dedup and fair scheduling see them.  The batch
        # layer owns the same DRC/store/accounting steps as the serial
        # body below.
        if self._external_parallel and self._use_parallel():
            return self._run_tool_batch(np.atleast_2d(encoded), record)[0]
        params = self.space.decode(encoded)
        # Space-aware DRC pre-flight: reject before the evaluator (whose
        # own gate knows the module but not the declared space) is touched.
        if not self.gate.is_feasible(params):
            return self._note_failure(params, "DrcViolationError", record_ledger=True)
        # Persistent-store consult: a prior process already ran this exact
        # configuration — adopt it as a cache-priced answer.  Low-fidelity
        # probe records (written by a gated session) are *not* adopted
        # here: the full flow must answer, and its record supersedes them.
        key, stored = self._store_lookup(params)
        if stored is not None and stored.rank >= FULL_RANK:
            return self._adopt_stored(encoded, params, stored, record)
        try:
            point = self.evaluator.evaluate(params)
        except ReproError as exc:
            # The evaluator already wrote this point's ledger record; pass
            # along the partial tool cost the failed run charged.
            charge = self.evaluator.last_failure_seconds
            self._store_append(
                key,
                error_type=type(exc).__name__,
                message=str(exc),
                charge_s=charge,
            )
            return self._note_failure(params, type(exc).__name__, charge_s=charge)
        self._store_append(key, point=point)
        return self._note_point(encoded, point, record)

    def _adopt_stored(
        self, encoded: np.ndarray, params: dict[str, int], record_obj, record: bool
    ) -> np.ndarray:
        """Account a persistent-store hit on the serial path."""
        tel = current_telemetry()
        if tel is not None:
            tel.counters.inc("cache.store_hit")
        if record_obj.kind == KIND_FAILURE:
            payload = record_obj.payload
            error_type = str(payload.get("original_type", "ReproError"))
            if tel is not None:
                tel.ledger.append(
                    params=params,
                    outcome="failed",
                    charge=0.0,
                    error_type=error_type,
                    origin="store",
                )
            return self._note_failure(params, error_type, charge_s=0.0)
        point = dataclasses.replace(
            decode_point(record_obj.payload),
            parameters=dict(params),
            source="cache",
            simulated_seconds=0.0,
        )
        if tel is not None:
            tel.ledger.append(
                params=params,
                outcome="cache",
                metrics=point.metrics,
                charge=0.0,
                origin="store",
            )
        return self._note_point(encoded, point, record)

    # ------------------------------------------------------------------
    # Speculative fidelity gate

    @staticmethod
    def _frozen(params: dict[str, int]) -> tuple:
        return tuple(sorted((k, int(v)) for k, v in params.items()))

    def _static_priors(self, params: dict[str, int]) -> np.ndarray | None:
        """Rung-0 prior features for one binding (memoized), or None when off.

        The static estimator's (LUT lb, FF lb, delay lb, congestion) tuple,
        with the resource counts log-compressed so large designs do not
        dominate the NW kernel distance.  A binding the estimator cannot
        bound (no timing arcs, elaboration failure) contributes a zero row
        rather than None — the gate's model needs a fixed input dimension,
        and the probe/flow will surface the real diagnostic.
        """
        if not self.gate_static_priors:
            return None
        frozen = self._frozen(params)
        cached = self._prior_cache.get(frozen)
        if cached is None:
            from repro.netlist.static_estimate import static_estimate_point

            ev = self.evaluator
            try:
                est = static_estimate_point(
                    ev.module,
                    ev.sim.device,
                    params,
                    synth_directive=ev.directives.synth,
                    impl_directive=ev.directives.impl,
                    boxed=ev.boxed,
                    noise_floor=0.9 if ev.sim.noise else 1.0,
                )
                lut_lb, ff_lb, delay_lb, congestion = est.features()
                cached = np.array(
                    [np.log1p(lut_lb), np.log1p(ff_lb), delay_lb, congestion]
                )
            except ReproError:
                cached = np.zeros(4)
            self._prior_cache[frozen] = cached
        return cached

    def _run_tool_gated(self, encoded: np.ndarray) -> np.ndarray:
        """One fitness evaluation through the promotion gate.

        Probe at the gate fidelity, predict the full-route outcome, and
        run the expensive tail only when the gate promotes.  Skipped
        points enter history as ``source="speculative"`` with *predicted*
        metrics and are remembered for promotion-on-demand
        (:meth:`promote_archive`) in case they survive into the archive.
        """
        gate = self.promotion_gate
        assert gate is not None
        params = self.space.decode(encoded)
        frozen = self._frozen(params)
        tel = current_telemetry()
        memo = self._gate_memo.get(frozen)
        if memo is not None:
            # The gated path already answered this binding this session —
            # replay it cache-priced, like the tool's own run cache would.
            metrics = dict(zip(self.evaluator.metric_names(), map(float, memo)))
            point = EvaluatedPoint(
                parameters=dict(params),
                metrics=metrics,
                source="cache",
                simulated_seconds=0.0,
            )
            if tel is not None:
                tel.ledger.append(
                    params=params, outcome="cache", metrics=metrics,
                    charge=0.0, origin="gate",
                )
            return self._note_point(encoded, point, record=False)
        if not self.gate.is_feasible(params):
            return self._note_failure(params, "DrcViolationError", record_ledger=True)
        key, stored = self._store_lookup(params)
        if stored is not None and stored.rank >= FULL_RANK:
            y = np.asarray(
                self._adopt_stored(encoded, params, stored, record=False), dtype=float
            )
            self._gate_memo[frozen] = y.copy()
            return y
        probe_point: EvaluatedPoint | None = None
        probe_cost = 0.0
        if stored is not None and stored.kind == KIND_POINT:
            # A previous gated session stored this binding's probe: reuse
            # it as the (free) low-fidelity signal, then decide as usual.
            probe_point = dataclasses.replace(
                decode_point(stored.payload),
                parameters=dict(params),
                source="cache",
                simulated_seconds=0.0,
            )
            if tel is not None:
                tel.counters.inc("cache.store_hit")
                tel.ledger.append(
                    params=params, outcome="cache", metrics=probe_point.metrics,
                    charge=0.0, origin="store", fidelity=probe_point.fidelity,
                )
        elif stored is not None:
            # A stored low-rank failure: the probe already failed for a
            # previous session; fidelity verdicts for this binding are
            # probe-level only, so keep treating it as infeasible.
            error_type = str(stored.payload.get("original_type", "ReproError"))
            if tel is not None:
                tel.counters.inc("cache.store_hit")
                tel.ledger.append(
                    params=params, outcome="failed", charge=0.0,
                    error_type=error_type, origin="store",
                )
            y = np.asarray(
                self._note_failure(params, error_type, charge_s=0.0), dtype=float
            )
            self._gate_memo[frozen] = y.copy()
            return y
        if probe_point is None:
            try:
                probe_point = self.evaluator.evaluate(
                    params, fidelity=self.gate_fidelity
                )
            except ReproError as exc:
                charge = self.evaluator.last_failure_seconds
                self._store_append(
                    key,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    charge_s=charge,
                    rank=fidelity_rank(str(self.gate_fidelity)),
                )
                y = np.asarray(
                    self._note_failure(
                        params, type(exc).__name__, charge_s=charge
                    ),
                    dtype=float,
                )
                self._gate_memo[frozen] = y.copy()
                return y
            probe_cost = probe_point.simulated_seconds
        signs = gate.signs
        y_low = self._metric_vector(probe_point)
        x = np.asarray(encoded, dtype=float)
        low_min = signs * y_low
        priors = self._static_priors(params)
        decision = gate.assess(x, low_min, priors)
        if decision.promote:
            try:
                full_point = self.evaluator.evaluate(params)
            except ReproError as exc:
                # The probe passed but the full flow failed (fidelities
                # draw independent QoR noise, so borderline capacity can
                # differ) — the point is infeasible and charges both runs.
                charge = self.evaluator.last_failure_seconds
                self._store_append(
                    key,
                    error_type=type(exc).__name__,
                    message=str(exc),
                    charge_s=charge,
                )
                y = np.asarray(
                    self._note_failure(
                        params, type(exc).__name__, charge_s=probe_cost + charge
                    ),
                    dtype=float,
                )
                self._gate_memo[frozen] = y.copy()
                return y
            y_full = self._metric_vector(full_point)
            gate.observe(x, low_min, signs * y_full, priors)
            self._store_append(key, point=full_point)
            self._gate_memo[frozen] = y_full.copy()
            # One history entry per design point; its cost is the probe
            # plus the full run (the full run reuses the probe's cached
            # synthesis stage, so the sum equals the ungated full cost).
            combined = dataclasses.replace(
                full_point,
                simulated_seconds=probe_cost + full_point.simulated_seconds,
            )
            return self._note_point(encoded, combined, record=False)
        # Skip: answer with the gate's predicted full-route metrics and
        # remember the binding for promotion-on-demand.
        pred_min = decision.predicted_full_min
        assert pred_min is not None  # skips only happen with a fitted model
        y_pred = signs * np.asarray(pred_min, dtype=float)
        metrics = dict(zip(self.evaluator.metric_names(), map(float, y_pred)))
        spec_point = EvaluatedPoint(
            parameters=dict(params),
            metrics=metrics,
            source="speculative",
            simulated_seconds=probe_cost,
            fidelity=str(probe_point.fidelity),
        )
        self._store_append(
            key, point=probe_point, rank=fidelity_rank(probe_point.fidelity)
        )
        self._speculative[frozen] = (x.copy(), low_min.copy())
        self._gate_memo[frozen] = y_pred.copy()
        return self._note_point(encoded, spec_point, record=False)

    def promote_archive(self, archive) -> int:
        """Run the full flow for every speculative point still in ``archive``.

        The gate's contract: a skipped point's predicted metrics may
        steer the search, but nothing speculative survives into the
        *reported* front.  Called by the session after the algorithm
        finishes; every *non-dominated* archive member whose binding was
        skipped is promoted (its archive ``F`` rows are patched in place
        with the authoritative minimized metrics) and the gate's
        calibration learns from the outcome.  Because a promotion can
        worsen a row and expose previously shadowed points, the
        front-extraction/promotion loop iterates until the non-dominated
        subset is speculation-free.  Dominated speculative members stay
        predicted — they never reach the reported front, and promoting
        them would forfeit exactly the route+STA time the gate saved.
        Returns the number of promotions.
        """
        gate = self.promotion_gate
        if gate is None or not self._speculative:
            return 0
        X = getattr(archive, "X", None)
        if X is None or archive.F is None or not len(X):
            return 0
        from repro.moo.nds import non_dominated_mask

        rows = np.atleast_2d(np.asarray(X))
        signs = gate.signs
        tel = current_telemetry()
        identity = self._store_identity()
        promoted = 0
        while True:
            mask = non_dominated_mask(archive.F)
            fixes: dict[tuple, np.ndarray] = {}  # frozen binding -> minimized row
            for i in np.flatnonzero(mask):
                params = self.space.decode(rows[i])
                frozen = self._frozen(params)
                if frozen in fixes:
                    continue
                spec = self._speculative.get(frozen)
                if spec is None:
                    continue
                x, low_min = spec
                key = point_key(identity, params) if identity is not None else None
                if tel is not None:
                    tel.counters.inc("decision.fidelity_promote")
                try:
                    full_point = self.evaluator.evaluate(params)
                except ReproError as exc:
                    charge = self.evaluator.last_failure_seconds
                    self._store_append(
                        key,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        charge_s=charge,
                    )
                    self._note_failure(params, type(exc).__name__, charge_s=charge)
                    penalty = self._penalty_vector()
                    fixes[frozen] = signs * penalty
                    self._gate_memo[frozen] = penalty.copy()
                    del self._speculative[frozen]
                    continue
                y_full = self._metric_vector(full_point)
                gate.observe(x, low_min, signs * y_full, self._static_priors(params))
                self._store_append(key, point=full_point)
                self._note_point(rows[i], full_point, record=False)
                fixes[frozen] = signs * y_full
                self._gate_memo[frozen] = y_full.copy()
                del self._speculative[frozen]
                promoted += 1
            if not fixes:
                return promoted
            for i in range(rows.shape[0]):
                frozen = self._frozen(self.space.decode(rows[i]))
                fix = fixes.get(frozen)
                if fix is not None:
                    archive.F[i] = fix

    # ------------------------------------------------------------------
    # Batch fan-out (shared by the blocking and async interfaces)

    def submit_encoded(self, X: np.ndarray, record: bool = False) -> "PendingEncodedBatch":
        """Submit encoded rows to the fan-out without waiting.

        Returns a :class:`PendingEncodedBatch`; call ``collect()`` to
        account the results.  Batches must be collected in submission
        order — history, cost accounting, and dataset insertion follow
        collection order, and the serial reference defines it as the
        submission order.
        """
        rows = [np.asarray(row) for row in np.atleast_2d(X)]
        params_list = [self.space.decode(row) for row in rows]
        batch = self._parallel_evaluator().submit_many(params_list)
        return PendingEncodedBatch(self, rows, params_list, batch, record)

    def _run_tool_batch(self, X: np.ndarray, record: bool) -> np.ndarray:
        """Fan encoded rows over the persistent pool; replay in order.

        The fan-out evaluates unique unseen points concurrently; results
        (and infeasibility penalties) are then accounted in the original
        row order, so history, cost accounting, and dataset insertion
        order are identical to the serial loop.
        """
        return self.submit_encoded(X, record=record).collect()

    def evaluate_encoded(self, X: np.ndarray) -> np.ndarray:
        """Evaluate encoded rows → raw metric matrix (NSGA-II's fitness).

        Without the approximation model every row is a real tool run, so
        the whole batch fans out over the persistent worker pool when
        ``workers > 1``.  With the model active, rows stay serial: each
        decision (cache / estimate / evaluate) depends on the dataset
        state the previous rows just updated.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.int64))
        if not self.use_model and self._use_parallel():
            return self._run_tool_batch(X, record=False)
        out = np.empty((X.shape[0], len(self.evaluator.metric_names())))
        for i, row in enumerate(X):
            if not self.use_model:
                out[i] = self._run_tool(row, record=False)
                continue
            # DRC pre-flight: an infeasible point must not reach the control
            # model (a cached/estimated answer for a design that cannot
            # elaborate would be fiction).  Pure memoized check — when every
            # point is feasible this consults no RNG and records nothing.
            params = self.space.decode(row)
            if not self.gate.is_feasible(params):
                out[i] = self._note_failure(
                    params, "DrcViolationError", record_ledger=True
                )
                continue
            tel = current_telemetry()
            decision = self.control.decide(np.asarray(row, dtype=float))
            self.control.note(decision)
            if decision == Decision.CACHED:
                out[i] = self.control.cached(np.asarray(row, dtype=float))
                self.simulated_seconds += _CACHE_HIT_COST_S
                if tel is not None:
                    tel.counters.add("budget.charged_s", _CACHE_HIT_COST_S)
                    tel.ledger.append(
                        params=params, outcome="cache",
                        metrics=dict(
                            zip(self.evaluator.metric_names(), map(float, out[i]))
                        ),
                        charge=0.0,
                    )
            elif decision == Decision.ESTIMATE:
                out[i] = self.control.estimate(np.asarray(row, dtype=float))
                self.simulated_seconds += _ESTIMATE_COST_S
                metrics = dict(
                    zip(self.evaluator.metric_names(), map(float, out[i]))
                )
                if tel is not None:
                    tel.counters.add("budget.charged_s", _ESTIMATE_COST_S)
                    tel.ledger.append(
                        params=params, outcome="estimate",
                        metrics=metrics, charge=0.0,
                    )
                # Estimated points also enter history (marked) for analysis.
                self.history.append(
                    EvaluatedPoint(
                        parameters=params,
                        metrics=metrics,
                        source="estimate",
                        simulated_seconds=_ESTIMATE_COST_S,
                    )
                )
            else:
                out[i] = self._run_tool(row, record=True)
        return out

    def tool_runs(self) -> int:
        return sum(1 for p in self.history if p.source == "tool")

    def stats(self) -> dict[str, float | int]:
        base: dict[str, float | int] = {
            "history": len(self.history),
            "tool_runs": self.tool_runs(),
            "infeasible": self.infeasible,
            "simulated_seconds": self.simulated_seconds,
        }
        base.update(self.gate.stats())
        # All-path rejection count (serial, batch, and model paths) — more
        # informative than the fitness gate's own memoized tally.
        base["drc_rejections"] = self.drc_rejections
        # Stage-cache effectiveness and per-fidelity run counts, read off
        # the serial tool session (pool workers keep their own sessions
        # and report through the run ledger instead).
        sim = self.evaluator.sim
        base["run_cache_hits"] = sim.run_cache_hits
        base["synth_stage_hits"] = sim.synth_stage_hits
        base["impl_stage_hits"] = sim.impl_stage_hits
        # Per-fidelity fresh-run counts.  A gated session is always
        # serial, so the tool session's own counters are exact (they
        # include probe runs, which history folds into combined
        # entries).  Ungated sessions may fan out over pool workers
        # whose sims this session never sees — there the history is the
        # pool-consistent source: every worker's fresh run lands as
        # source "tool" with its fidelity tag.
        if self.promotion_gate is not None:
            for fid, count in sim.fidelity_runs.items():
                base[f"runs:{fid}"] = count
        else:
            for fid in Fidelity:
                base[f"runs:{fid}"] = sum(
                    1 for p in self.history
                    if p.source == "tool" and p.fidelity == str(fid)
                )
        if self.promotion_gate is not None:
            for name, value in self.promotion_gate.stats().items():
                if name == "band":
                    continue
                base[f"gate_{name}"] = value
            base["gate_pending_speculative"] = len(self._speculative)
        if self.use_model:
            base.update(self.control.stats())
        return base


class PendingEncodedBatch:
    """Encoded rows submitted to the fan-out, awaiting accounting.

    Produced by :meth:`ApproximateFitness.submit_encoded`.  The underlying
    points may resolve in any order across the pool; ``collect()`` blocks
    until all are done and then accounts them in the original row order,
    so the history/cost/dataset trajectory is identical to the serial
    loop.  Collect batches in the order they were submitted.
    """

    def __init__(
        self,
        fitness: ApproximateFitness,
        rows: list[np.ndarray],
        params_list: list[dict[str, int]],
        batch,
        record: bool,
    ) -> None:
        self._fitness = fitness
        self._rows = rows
        self._params_list = params_list
        self._batch = batch
        self._record = record

    def __len__(self) -> int:
        return len(self._rows)

    def done(self) -> bool:
        """True when no point of this batch is still running."""
        return self._batch.done()

    def collect(self) -> np.ndarray:
        """Block until resolved; account and return the metric matrix."""
        from repro.core.parallel import EvaluationFailure

        fitness = self._fitness
        outs = self._batch.results(on_error="return")
        result = np.empty((len(self._rows), len(fitness.evaluator.metric_names())))
        for i, (row, params, res) in enumerate(
            zip(self._rows, self._params_list, outs)
        ):
            if isinstance(res, EvaluationFailure):
                # The parallel evaluator (worker, store, or memo) already
                # wrote the ledger record and ships the failed run's cost.
                result[i] = fitness._note_failure(
                    params, res.original_type, charge_s=res.simulated_seconds
                )
            else:
                result[i] = fitness._note_point(row, res, self._record)
        return result


class _BoundsOnly(IntegerProblem):
    """Bounds-carrying stub so sampling can run without a fitness."""

    def __init__(self, space: ParameterSpace) -> None:
        super().__init__(
            space.lows(), space.highs(), [Objective.minimize("stub")]
        )

    def evaluate(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("sampling stub is never evaluated")


class DseProblem(IntegerProblem):
    """The NSGA-II problem wrapping an :class:`ApproximateFitness`."""

    def __init__(self, fitness: ApproximateFitness) -> None:
        space = fitness.space
        super().__init__(
            space.lows(),
            space.highs(),
            [spec.as_objective() for spec in fitness.evaluator.metrics],
        )
        self.fitness = fitness

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return self.fitness.evaluate_encoded(X)

    def feasible_mask(self, X: np.ndarray) -> np.ndarray:
        """Consult the DRC pre-flight gate (pure, memoized).

        Rows the gate's interval analysis proves infeasible are rejected
        vectorized, with zero decode or elaboration work; only undecided
        rows fall through to the per-point memoized check.  Verdicts are
        identical either way (the static layer only short-circuits
        definite rejections).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.int64))
        gate = self.fitness.gate
        space = self.fitness.space
        mask = np.ones(X.shape[0], dtype=bool)
        static_bad = gate.static_infeasible_mask(X)
        if static_bad.any():
            mask[static_bad] = False
            tel = current_telemetry()
            if tel is not None:
                tel.counters.inc(
                    "decision.static_mask_reject", by=int(static_bad.sum())
                )
        for i in np.flatnonzero(~static_bad):
            mask[i] = gate.is_feasible(space.decode(X[i]))
        return mask
