"""The DSE fitness function, with and without the approximation model.

:class:`ApproximateFitness` adapts a :class:`~repro.core.evaluate.
PointEvaluator` into the batch-evaluation interface NSGA-II consumes,
routing every proposed point through the control model's three cases
(cache / estimate / real run).  It also accounts cost: real runs charge
the tool's simulated seconds, estimates charge a fixed small cost (the
NWM is "cheap computational cost" per the paper), cached hits charge the
tool's cache-answer overhead.

With ``use_model=False`` the class degrades to direct evaluation — the
configuration used for the Corundum/Neorv32/TiReX experiments ("disabling
the approximator model to employ direct Vivado evaluations").
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np

from repro.analysis.gate import PreflightGate
from repro.cache import (
    KIND_FAILURE,
    KIND_POINT,
    ResultStore,
    decode_point,
    encode_failure,
    encode_point,
    point_key,
    run_identity,
)
from repro.core.evaluate import PointEvaluator
from repro.core.point import EvaluatedPoint
from repro.core.spaces import ParameterSpace
from repro.errors import ReproError
from repro.estimation import ControlModel, Dataset, Decision, RefitPolicy
from repro.moo.problem import IntegerProblem, Objective, Sense
from repro.moo.sampling import IntegerRandomSampling
from repro.observe import current_telemetry
from repro.util.rng import as_generator

__all__ = ["ApproximateFitness", "DseProblem", "PendingEncodedBatch"]

# Cost model for non-tool answers (simulated seconds).
_ESTIMATE_COST_S = 0.2
_CACHE_HIT_COST_S = 2.0


class ApproximateFitness:
    """Routes design-point evaluations through the control model."""

    def __init__(
        self,
        evaluator: PointEvaluator,
        space: ParameterSpace,
        use_model: bool = True,
        pretrain_size: int = 100,     # the paper's M default
        min_points_to_estimate: int = 4,
        seed: int = 0,
        workers: int = 0,
        design_name: str | None = None,
        refit_policy: RefitPolicy | None = None,
        result_store: ResultStore | str | Path | None = None,
    ) -> None:
        self.evaluator = evaluator
        self.space = space
        self.use_model = use_model
        self.pretrain_size = pretrain_size
        self.seed = seed
        self.workers = workers
        self.design_name = design_name
        if isinstance(result_store, (str, Path)):
            result_store = ResultStore(result_store)
        self.result_store = result_store
        self._store_identity_cache: dict | None = None
        self.min_points_to_estimate = min_points_to_estimate
        self.refit_policy = refit_policy or RefitPolicy()
        self.control = ControlModel(
            dataset=Dataset(
                n_var=len(space), metric_names=evaluator.metric_names()
            ),
            min_points_to_estimate=min_points_to_estimate,
            refit_policy=self.refit_policy,
        )
        # Space-aware DRC pre-flight gate: in addition to the evaluator's
        # own point-level checks this one validates proposed values against
        # the declared parameter space, and it lets the model-active path
        # reject a point before the control model even sees it.
        self.gate = PreflightGate(
            evaluator.module,
            space=space,
            boxed=evaluator.boxed,
            clock_port=evaluator.clock_port,
        )
        self.history: list[EvaluatedPoint] = []
        self.simulated_seconds = 0.0
        self.infeasible = 0
        self.drc_rejections = 0
        self.mse_trace: list[tuple[int, float]] = []  # (dataset size, LOO MSE)
        self._parallel = None  # lazy ParallelPointEvaluator

    # ------------------------------------------------------------------
    # Parallel fan-out

    def set_workers(self, workers: int) -> None:
        """Resize the tool fan-out (rebuilds the pool on next batch)."""
        if workers != self.workers:
            self.close()
            self.workers = workers

    def close(self) -> None:
        """Release the worker pool, if one was started."""
        if self._parallel is not None:
            self._parallel.close()
            self._parallel = None

    def _use_parallel(self) -> bool:
        # Incremental flows warm-start from the shared session's
        # checkpoints; worker-local sessions would diverge from the serial
        # reference, so the batch path only engages for pure evaluators.
        return self.workers > 1 and not getattr(self.evaluator, "incremental", False)

    def _parallel_evaluator(self):
        if self._parallel is None:
            from repro.core.parallel import EvaluatorSpec, ParallelPointEvaluator

            self._parallel = ParallelPointEvaluator(
                spec=EvaluatorSpec.from_evaluator(
                    self.evaluator, design_name=self.design_name
                ),
                workers=self.workers,
                store=self.result_store,
            )
        return self._parallel

    # ------------------------------------------------------------------
    # Persistent result store (serial path; the batch path goes through
    # ParallelPointEvaluator, which owns the same consult/append logic)

    def _store_identity(self) -> dict | None:
        """Store namespace of the serial evaluator (None = store off).

        Must be byte-identical to the identity
        :class:`~repro.core.parallel.ParallelPointEvaluator` derives from
        its spec, so serial and fanned-out runs share store entries.
        Incremental flows are order-dependent and never use the store.
        """
        if self.result_store is None or getattr(self.evaluator, "incremental", False):
            return None
        if self._store_identity_cache is None:
            ev = self.evaluator
            self._store_identity_cache = run_identity(
                source=ev.source_text,
                language=str(ev.language),
                top=ev.module.name,
                part=ev.part,
                step=str(ev.step),
                synth_directive=str(ev.directives.synth),
                impl_directive=str(ev.directives.impl),
                target_period_ns=ev.target_period_ns,
                seed=ev.seed,
                metrics=tuple(
                    (s.canonical_name(), str(s.sense)) for s in ev.metrics
                ),
                boxed=ev.boxed,
            )
        return self._store_identity_cache

    def _store_lookup(
        self, params: dict[str, int]
    ) -> tuple[str | None, "object | None"]:
        """(point key, stored record) — either may be None."""
        identity = self._store_identity()
        if identity is None:
            return None, None
        key = point_key(identity, params)
        return key, self.result_store.get(key)

    def _store_append(
        self,
        key: str | None,
        point: EvaluatedPoint | None = None,
        error_type: str | None = None,
        message: str = "",
        charge_s: float = 0.0,
    ) -> None:
        if key is None or self.result_store is None:
            return
        stored = False
        if point is not None:
            stored = self.result_store.put(key, KIND_POINT, encode_point(point))
        elif error_type is not None and error_type != "DrcViolationError":
            # DRC rejections are recomputed locally at zero cost and are
            # rule-dependent, not flow-dependent — never persisted.
            stored = self.result_store.put(
                key, KIND_FAILURE, encode_failure(error_type, message, charge_s)
            )
        if stored:
            tel = current_telemetry()
            if tel is not None:
                tel.counters.inc("cache.store_put")

    # ------------------------------------------------------------------

    def pretrain(self, rng: np.random.Generator | int | None = None) -> int:
        """Generate the synthetic dataset: M distinct random tool runs.

        Returns the number of points actually evaluated (the space may be
        smaller than M).
        """
        if not self.use_model or self.pretrain_size <= 0:
            return 0
        rng = as_generator(self.seed if rng is None else rng)
        problem_stub = _BoundsOnly(self.space)
        sample = IntegerRandomSampling(unique=True)(
            problem_stub, min(self.pretrain_size, self.space.cardinality()), rng
        )
        if self._use_parallel():
            self._run_tool_batch(sample.X, record=True)
        else:
            for row in sample.X:
                self._run_tool(row, record=True)
        return int(sample.X.shape[0])

    # ------------------------------------------------------------------

    def _metric_vector(self, point: EvaluatedPoint) -> np.ndarray:
        return np.array(
            [point.metrics[name] for name in self.evaluator.metric_names()],
            dtype=float,
        )

    def _penalty_vector(self) -> np.ndarray:
        """Worst-case metrics for infeasible points (capacity overflow etc.).

        A run the tool rejects — pin/resource overflow, unroutable design —
        still consumes DSE budget in reality; here it yields a vector that
        every feasible point dominates, so NSGA-II steers away without the
        session aborting.
        """
        out = np.empty(len(self.evaluator.metrics))
        for j, spec in enumerate(self.evaluator.metrics):
            out[j] = 0.0 if spec.sense == Sense.MAXIMIZE else 1e12
        return out

    def _note_failure(
        self,
        params: dict[str, int],
        error_type: str,
        charge_s: float | None = None,
        record_ledger: bool = False,
    ) -> np.ndarray:
        """Bookkeeping for an infeasible run (shared serial/batch path).

        Points the DRC pre-flight gate rejected never touched the tool, so
        they enter history as zero-cost ``source="drc"`` records; points
        the tool itself rejected (capacity overflow, unroutable) keep the
        ``infeasible:TYPE`` source and charge the *partial* tool time the
        failed run actually spent (``charge_s``, floored at the tool's
        cache-answer overhead) — Vivado errors late, and a failed point is
        not free against the soft deadline.

        ``record_ledger`` is set only by call sites where no lower layer
        (evaluator, worker, parallel memo) has already written the point's
        ledger record — every evaluated point gets exactly one.
        """
        self.infeasible += 1
        if error_type == "DrcViolationError":
            source = "drc"
            cost = 0.0
            self.drc_rejections += 1
        else:
            source = f"infeasible:{error_type}"
            cost = max(_CACHE_HIT_COST_S, charge_s or 0.0)
            self.simulated_seconds += cost
        tel = current_telemetry()
        if tel is not None:
            tel.counters.add("budget.charged_s", cost)
            if record_ledger:
                tel.ledger.append(
                    params=params,
                    outcome="drc" if source == "drc" else "failed",
                    charge=0.0 if source == "drc" else (charge_s or 0.0),
                    error_type=error_type,
                )
        self.history.append(
            EvaluatedPoint(
                parameters=params,
                metrics=dict(
                    zip(
                        self.evaluator.metric_names(),
                        map(float, self._penalty_vector()),
                    )
                ),
                source=source,
                simulated_seconds=cost,
            )
        )
        return self._penalty_vector()

    def _note_point(
        self, encoded: np.ndarray, point: EvaluatedPoint, record: bool
    ) -> np.ndarray:
        """Bookkeeping for a completed run (shared serial/batch path)."""
        self.history.append(point)
        cost = max(point.simulated_seconds, _CACHE_HIT_COST_S)
        self.simulated_seconds += cost
        tel = current_telemetry()
        if tel is not None:
            tel.counters.add("budget.charged_s", cost)
        y = self._metric_vector(point)
        if record and self.use_model:
            self.control.record(np.asarray(encoded, dtype=float), y)
            if np.isfinite(self.control.last_loo_mse):
                self.mse_trace.append(
                    (len(self.control.dataset), self.control.last_loo_mse)
                )
        return y

    def _run_tool(self, encoded: np.ndarray, record: bool) -> np.ndarray:
        params = self.space.decode(encoded)
        # Space-aware DRC pre-flight: reject before the evaluator (whose
        # own gate knows the module but not the declared space) is touched.
        if not self.gate.is_feasible(params):
            return self._note_failure(params, "DrcViolationError", record_ledger=True)
        # Persistent-store consult: a prior process already ran this exact
        # configuration — adopt it as a cache-priced answer.
        key, stored = self._store_lookup(params)
        if stored is not None:
            return self._adopt_stored(encoded, params, stored, record)
        try:
            point = self.evaluator.evaluate(params)
        except ReproError as exc:
            # The evaluator already wrote this point's ledger record; pass
            # along the partial tool cost the failed run charged.
            charge = self.evaluator.last_failure_seconds
            self._store_append(
                key,
                error_type=type(exc).__name__,
                message=str(exc),
                charge_s=charge,
            )
            return self._note_failure(params, type(exc).__name__, charge_s=charge)
        self._store_append(key, point=point)
        return self._note_point(encoded, point, record)

    def _adopt_stored(
        self, encoded: np.ndarray, params: dict[str, int], record_obj, record: bool
    ) -> np.ndarray:
        """Account a persistent-store hit on the serial path."""
        tel = current_telemetry()
        if tel is not None:
            tel.counters.inc("cache.store_hit")
        if record_obj.kind == KIND_FAILURE:
            payload = record_obj.payload
            error_type = str(payload.get("original_type", "ReproError"))
            if tel is not None:
                tel.ledger.append(
                    params=params,
                    outcome="failed",
                    charge=0.0,
                    error_type=error_type,
                    origin="store",
                )
            return self._note_failure(params, error_type, charge_s=0.0)
        point = dataclasses.replace(
            decode_point(record_obj.payload),
            parameters=dict(params),
            source="cache",
            simulated_seconds=0.0,
        )
        if tel is not None:
            tel.ledger.append(
                params=params,
                outcome="cache",
                metrics=point.metrics,
                charge=0.0,
                origin="store",
            )
        return self._note_point(encoded, point, record)

    # ------------------------------------------------------------------
    # Batch fan-out (shared by the blocking and async interfaces)

    def submit_encoded(self, X: np.ndarray, record: bool = False) -> "PendingEncodedBatch":
        """Submit encoded rows to the fan-out without waiting.

        Returns a :class:`PendingEncodedBatch`; call ``collect()`` to
        account the results.  Batches must be collected in submission
        order — history, cost accounting, and dataset insertion follow
        collection order, and the serial reference defines it as the
        submission order.
        """
        rows = [np.asarray(row) for row in np.atleast_2d(X)]
        params_list = [self.space.decode(row) for row in rows]
        batch = self._parallel_evaluator().submit_many(params_list)
        return PendingEncodedBatch(self, rows, params_list, batch, record)

    def _run_tool_batch(self, X: np.ndarray, record: bool) -> np.ndarray:
        """Fan encoded rows over the persistent pool; replay in order.

        The fan-out evaluates unique unseen points concurrently; results
        (and infeasibility penalties) are then accounted in the original
        row order, so history, cost accounting, and dataset insertion
        order are identical to the serial loop.
        """
        return self.submit_encoded(X, record=record).collect()

    def evaluate_encoded(self, X: np.ndarray) -> np.ndarray:
        """Evaluate encoded rows → raw metric matrix (NSGA-II's fitness).

        Without the approximation model every row is a real tool run, so
        the whole batch fans out over the persistent worker pool when
        ``workers > 1``.  With the model active, rows stay serial: each
        decision (cache / estimate / evaluate) depends on the dataset
        state the previous rows just updated.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.int64))
        if not self.use_model and self._use_parallel():
            return self._run_tool_batch(X, record=False)
        out = np.empty((X.shape[0], len(self.evaluator.metric_names())))
        for i, row in enumerate(X):
            if not self.use_model:
                out[i] = self._run_tool(row, record=False)
                continue
            # DRC pre-flight: an infeasible point must not reach the control
            # model (a cached/estimated answer for a design that cannot
            # elaborate would be fiction).  Pure memoized check — when every
            # point is feasible this consults no RNG and records nothing.
            params = self.space.decode(row)
            if not self.gate.is_feasible(params):
                out[i] = self._note_failure(
                    params, "DrcViolationError", record_ledger=True
                )
                continue
            tel = current_telemetry()
            decision = self.control.decide(np.asarray(row, dtype=float))
            self.control.note(decision)
            if decision == Decision.CACHED:
                out[i] = self.control.cached(np.asarray(row, dtype=float))
                self.simulated_seconds += _CACHE_HIT_COST_S
                if tel is not None:
                    tel.counters.add("budget.charged_s", _CACHE_HIT_COST_S)
                    tel.ledger.append(
                        params=params, outcome="cache",
                        metrics=dict(
                            zip(self.evaluator.metric_names(), map(float, out[i]))
                        ),
                        charge=0.0,
                    )
            elif decision == Decision.ESTIMATE:
                out[i] = self.control.estimate(np.asarray(row, dtype=float))
                self.simulated_seconds += _ESTIMATE_COST_S
                metrics = dict(
                    zip(self.evaluator.metric_names(), map(float, out[i]))
                )
                if tel is not None:
                    tel.counters.add("budget.charged_s", _ESTIMATE_COST_S)
                    tel.ledger.append(
                        params=params, outcome="estimate",
                        metrics=metrics, charge=0.0,
                    )
                # Estimated points also enter history (marked) for analysis.
                self.history.append(
                    EvaluatedPoint(
                        parameters=params,
                        metrics=metrics,
                        source="estimate",
                        simulated_seconds=_ESTIMATE_COST_S,
                    )
                )
            else:
                out[i] = self._run_tool(row, record=True)
        return out

    def tool_runs(self) -> int:
        return sum(1 for p in self.history if p.source == "tool")

    def stats(self) -> dict[str, float | int]:
        base: dict[str, float | int] = {
            "history": len(self.history),
            "tool_runs": self.tool_runs(),
            "infeasible": self.infeasible,
            "simulated_seconds": self.simulated_seconds,
        }
        base.update(self.gate.stats())
        # All-path rejection count (serial, batch, and model paths) — more
        # informative than the fitness gate's own memoized tally.
        base["drc_rejections"] = self.drc_rejections
        if self.use_model:
            base.update(self.control.stats())
        return base


class PendingEncodedBatch:
    """Encoded rows submitted to the fan-out, awaiting accounting.

    Produced by :meth:`ApproximateFitness.submit_encoded`.  The underlying
    points may resolve in any order across the pool; ``collect()`` blocks
    until all are done and then accounts them in the original row order,
    so the history/cost/dataset trajectory is identical to the serial
    loop.  Collect batches in the order they were submitted.
    """

    def __init__(
        self,
        fitness: ApproximateFitness,
        rows: list[np.ndarray],
        params_list: list[dict[str, int]],
        batch,
        record: bool,
    ) -> None:
        self._fitness = fitness
        self._rows = rows
        self._params_list = params_list
        self._batch = batch
        self._record = record

    def __len__(self) -> int:
        return len(self._rows)

    def done(self) -> bool:
        """True when no point of this batch is still running."""
        return self._batch.done()

    def collect(self) -> np.ndarray:
        """Block until resolved; account and return the metric matrix."""
        from repro.core.parallel import EvaluationFailure

        fitness = self._fitness
        outs = self._batch.results(on_error="return")
        result = np.empty((len(self._rows), len(fitness.evaluator.metric_names())))
        for i, (row, params, res) in enumerate(
            zip(self._rows, self._params_list, outs)
        ):
            if isinstance(res, EvaluationFailure):
                # The parallel evaluator (worker, store, or memo) already
                # wrote the ledger record and ships the failed run's cost.
                result[i] = fitness._note_failure(
                    params, res.original_type, charge_s=res.simulated_seconds
                )
            else:
                result[i] = fitness._note_point(row, res, self._record)
        return result


class _BoundsOnly(IntegerProblem):
    """Bounds-carrying stub so sampling can run without a fitness."""

    def __init__(self, space: ParameterSpace) -> None:
        super().__init__(
            space.lows(), space.highs(), [Objective.minimize("stub")]
        )

    def evaluate(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError("sampling stub is never evaluated")


class DseProblem(IntegerProblem):
    """The NSGA-II problem wrapping an :class:`ApproximateFitness`."""

    def __init__(self, fitness: ApproximateFitness) -> None:
        space = fitness.space
        super().__init__(
            space.lows(),
            space.highs(),
            [spec.as_objective() for spec in fitness.evaluator.metrics],
        )
        self.fitness = fitness

    def evaluate(self, X: np.ndarray) -> np.ndarray:
        return self.fitness.evaluate_encoded(X)

    def feasible_mask(self, X: np.ndarray) -> np.ndarray:
        """Consult the DRC pre-flight gate (pure, memoized).

        Rows the gate's interval analysis proves infeasible are rejected
        vectorized, with zero decode or elaboration work; only undecided
        rows fall through to the per-point memoized check.  Verdicts are
        identical either way (the static layer only short-circuits
        definite rejections).
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.int64))
        gate = self.fitness.gate
        space = self.fitness.space
        mask = np.ones(X.shape[0], dtype=bool)
        static_bad = gate.static_infeasible_mask(X)
        if static_bad.any():
            mask[static_bad] = False
            tel = current_telemetry()
            if tel is not None:
                tel.counters.inc(
                    "decision.static_mask_reject", by=int(static_bad.sum())
                )
        for i in np.flatnonzero(~static_bad):
            mask[i] = gate.is_feasible(space.decode(X[i]))
        return mask
