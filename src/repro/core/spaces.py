"""Parameter spaces: the DSE decision variables and their restrictions.

The paper's formulation is integer-only (Section III-B1): every dimension
is an integer variable, booleans ride along as {0, 1}, and designers can
restrict a dimension — most prominently to powers of two — which both
shrinks the explored volume and "enforc[es] meaningful solutions only".

A :class:`ParameterSpace` maps between the optimizer's integer vectors
(the *encoded* space the GA mutates) and HDL parameter assignments (the
*decoded* values the tool consumes).  A power-of-two dimension encodes the
exponent, so the GA explores a dense integer range while the design sees
2^e.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.errors import InvalidSpaceError

__all__ = ["Dimension", "IntRange", "PowerOfTwoRange", "BoolParam", "ParameterSpace"]


@dataclass(frozen=True)
class Dimension:
    """Base: one named integer dimension with encoded inclusive bounds."""

    name: str
    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise InvalidSpaceError(
                f"{self.name}: inverted bounds [{self.low}, {self.high}]"
            )

    def decode(self, encoded: int) -> int:
        return int(encoded)

    def encode(self, value: int) -> int:
        return int(value)

    def cardinality(self) -> int:
        return self.high - self.low + 1

    def values(self) -> list[int]:
        return [self.decode(e) for e in range(self.low, self.high + 1)]

    def validate_round_trip(self) -> None:
        """Check encode(decode(e)) == e at both range boundaries.

        A dimension whose codec does not round-trip silently corrupts the
        GA's view of the space (clipping and masks key on encoded values),
        so :class:`ParameterSpace` refuses to be built around one.
        """
        for encoded in (self.low, self.high):
            decoded = self.decode(encoded)
            back = self.encode(decoded)
            if back != encoded:
                raise InvalidSpaceError(
                    f"{self.name}: encode/decode round-trip broken at "
                    f"boundary {encoded}: decode({encoded}) = {decoded}, "
                    f"encode({decoded}) = {back}"
                )


class IntRange(Dimension):
    """A plain integer range (identity encoding)."""


@dataclass(frozen=True)
class PowerOfTwoRange(Dimension):
    """Values 2^low … 2^high; the encoded variable is the exponent."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.low < 0:
            raise InvalidSpaceError(f"{self.name}: negative exponent {self.low}")

    @classmethod
    def over_values(cls, name: str, min_value: int, max_value: int) -> "PowerOfTwoRange":
        """Build from value bounds (must be powers of two, at least 1)."""
        if min_value < 1:
            raise InvalidSpaceError(
                f"{name}: minimum value {min_value} is below 1 — "
                "power-of-two dimensions start at 2**0 = 1"
            )
        for v in (min_value, max_value):
            if v & (v - 1):
                raise InvalidSpaceError(f"{name}: {v} is not a power of two")
        return cls(name, min_value.bit_length() - 1, max_value.bit_length() - 1)

    def decode(self, encoded: int) -> int:
        return 1 << int(encoded)

    def encode(self, value: int) -> int:
        value = int(value)
        if value < 1 or value & (value - 1):
            raise InvalidSpaceError(f"{self.name}: {value} is not a power of two")
        return value.bit_length() - 1


class BoolParam(Dimension):
    """A boolean parameter as the integer range {0, 1}."""

    def __init__(self, name: str) -> None:
        super().__init__(name=name, low=0, high=1)


class ParameterSpace:
    """An ordered collection of dimensions with encode/decode helpers."""

    def __init__(self, dimensions: Sequence[Dimension]) -> None:
        if not dimensions:
            raise InvalidSpaceError("parameter space has no dimensions")
        names = [d.name.lower() for d in dimensions]
        if len(set(names)) != len(names):
            raise InvalidSpaceError("duplicate dimension names")
        for d in dimensions:
            d.validate_round_trip()
        self.dimensions = tuple(dimensions)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.dimensions)

    def __iter__(self):
        return iter(self.dimensions)

    def names(self) -> list[str]:
        return [d.name for d in self.dimensions]

    def lows(self) -> np.ndarray:
        return np.array([d.low for d in self.dimensions], dtype=np.int64)

    def highs(self) -> np.ndarray:
        return np.array([d.high for d in self.dimensions], dtype=np.int64)

    def cardinality(self) -> int:
        out = 1
        for d in self.dimensions:
            out *= d.cardinality()
        return out

    def dimension(self, name: str) -> Dimension:
        for d in self.dimensions:
            if d.name.lower() == name.lower():
                return d
        raise KeyError(f"space has no dimension {name!r}")

    # ------------------------------------------------------------------

    def decode(self, encoded: Sequence[int] | np.ndarray) -> dict[str, int]:
        """Encoded GA vector → HDL parameter assignment."""
        encoded = np.asarray(encoded).ravel()
        if encoded.size != len(self.dimensions):
            raise InvalidSpaceError(
                f"vector has {encoded.size} entries, space has {len(self.dimensions)}"
            )
        return {
            d.name: d.decode(int(np.clip(e, d.low, d.high)))
            for d, e in zip(self.dimensions, encoded)
        }

    def encode(self, params: Mapping[str, int]) -> np.ndarray:
        """HDL parameter assignment → encoded GA vector."""
        out = np.empty(len(self.dimensions), dtype=np.int64)
        for i, d in enumerate(self.dimensions):
            match = None
            for key, value in params.items():
                if key.lower() == d.name.lower():
                    match = value
                    break
            if match is None:
                raise InvalidSpaceError(f"assignment missing dimension {d.name!r}")
            out[i] = d.encode(match)
        return out

    def decode_many(self, X: np.ndarray) -> list[dict[str, int]]:
        return [self.decode(row) for row in np.atleast_2d(X)]

    # ------------------------------------------------------------------

    @classmethod
    def from_design(cls, design, names: Iterable[str] | None = None) -> "ParameterSpace":
        """Build the canonical space of a case-study design generator.

        ``design`` is a :class:`repro.designs.base.DesignGenerator`;
        ``names`` optionally restricts/reorders the dimensions.
        """
        infos = list(design.params)
        if names is not None:
            infos = [design.param(n) for n in names]
        dims: list[Dimension] = []
        for info in infos:
            if info.power_of_two:
                dims.append(PowerOfTwoRange(info.name, info.low, info.high))
            elif (info.low, info.high) == (0, 1):
                dims.append(BoolParam(info.name))
            else:
                dims.append(IntRange(info.name, info.low, info.high))
        return cls(dims)
