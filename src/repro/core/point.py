"""Evaluated design points."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["EvaluatedPoint"]


@dataclass(frozen=True)
class EvaluatedPoint:
    """One configuration and its metric outcome.

    ``source`` records how the values were obtained — ``"tool"`` (a real
    VEDA run), ``"cache"``, ``"estimate"`` (Nadaraya-Watson), or
    ``"speculative"`` (a gated low-fidelity probe whose full-route values
    are predicted) — so result tables can distinguish measured from
    predicted rows.  ``fidelity`` names the flow-ladder rung the metrics
    were measured at (predictions keep the probe's fidelity).
    """

    parameters: dict[str, int]
    metrics: dict[str, float]
    source: str = "tool"
    simulated_seconds: float = 0.0
    fidelity: str = "full-route"

    def metric(self, name: str) -> float:
        for key, value in self.metrics.items():
            if key.lower() == name.lower():
                return value
        raise KeyError(f"point has no metric {name!r}")

    def as_row(self) -> dict[str, Any]:
        """Flat dict (parameters + metrics) for CSV export."""
        row: dict[str, Any] = dict(self.parameters)
        row.update(self.metrics)
        row["source"] = self.source
        return row

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.parameters.items())
        metrics = ", ".join(f"{k}={v:.4g}" for k, v in self.metrics.items())
        return f"({params}) -> {metrics} [{self.source}]"
