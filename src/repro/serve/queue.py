"""The filesystem job queue: client ↔ server handoff without a socket.

Layout::

    <root>/COUNTER            # next job ordinal (read-modify-write under flock)
    <root>/.lock              # the queue's writer lock file
    <root>/queued/job-000001.json
    <root>/running/job-000002.json
    <root>/running/job-000002.cancel   # cancel marker for a running job
    <root>/done/job-000000.json

Every transition is an atomic ``os.replace`` of the job's JSON file
between state directories, so a client and a server (or two servers)
never see a half-written record and never claim the same job twice: the
claim is ``replace(queued/x, running/x)``, which exactly one process
wins.  Job ids are dense ordinals assigned under the lock, so queue
order is submission order.

Cancellation is cooperative: cancelling a *queued* job moves its file
straight to ``done/`` as cancelled; cancelling a *running* job drops a
``.cancel`` marker next to the running record, which the server polls
and translates into a scheduler-level cancel (in-flight evaluations
finish, everything pending fails fast).
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.serve.jobs import JobRecord, JobSpec, JobState

try:  # pragma: no branch
    import fcntl

    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FLOCK = False

__all__ = ["FileJobQueue"]

_STATE_DIRS = {
    JobState.QUEUED: "queued",
    JobState.RUNNING: "running",
    JobState.DONE: "done",
    JobState.FAILED: "done",
    JobState.CANCELLED: "done",
}


class FileJobQueue:
    """Multi-process job queue over atomic file renames."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        for sub in ("queued", "running", "done"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / ".lock"
        self._counter_path = self.root / "COUNTER"

    @contextmanager
    def _locked(self) -> Iterator[None]:
        self._lock_path.touch(exist_ok=True)
        with self._lock_path.open("r+") as fh:
            if _HAVE_FLOCK:
                fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if _HAVE_FLOCK:
                    fcntl.flock(fh, fcntl.LOCK_UN)

    def _next_id(self) -> str:
        # The read-modify-write is atomic *and* durable: the new count is
        # fsynced to a tmp file and published with os.replace, so a crash
        # anywhere in the window leaves either the old or the new COUNTER
        # intact — never a truncated file that would restart ordinals at 0
        # and hand a duplicate job id to the next submitter.
        with self._locked():
            try:
                current = int(self._counter_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                current = 0
            tmp = self._counter_path.with_suffix(".tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                fh.write(str(current + 1))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._counter_path)
        return f"job-{current:06d}"

    def _path(self, state: JobState, job_id: str) -> Path:
        return self.root / _STATE_DIRS[state] / f"{job_id}.json"

    def _write(self, record: JobRecord) -> Path:
        """Atomically (re)write a record into its state directory."""
        path = self._path(record.state, record.job_id)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @staticmethod
    def _read(path: Path) -> JobRecord | None:
        try:
            return JobRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            # Mid-rename or half-written by a crashed writer: skip, the
            # owner (or the next scan) will see it settled.
            return None

    # -- client side -----------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue a job; returns the queued record (with its id)."""
        record = JobRecord(
            job_id=self._next_id(),
            spec=spec,
            state=JobState.QUEUED,
            submitted_at=time.time(),
        )
        self._write(record)
        return record

    def cancel(self, job_id: str) -> JobState | None:
        """Request cancellation; returns the state the request landed on.

        Queued jobs cancel immediately (their file moves to ``done/``);
        running jobs get a marker the server acts on; terminal jobs are
        left alone.  ``None`` means the id is unknown.
        """
        with self._locked():
            queued = self._path(JobState.QUEUED, job_id)
            record = self._read(queued)
            if record is not None:
                record.state = JobState.CANCELLED
                record.finished_at = time.time()
                self._write(record)
                queued.unlink(missing_ok=True)
                return JobState.CANCELLED
            running = self._path(JobState.RUNNING, job_id)
            if running.exists():
                running.with_suffix(".cancel").touch()
                return JobState.RUNNING
            done = self._path(JobState.DONE, job_id)
            done_record = self._read(done)
            if done_record is not None:
                return done_record.state
        return None

    def get(self, job_id: str) -> JobRecord | None:
        for state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE):
            record = self._read(self._path(state, job_id))
            if record is not None:
                return record
        return None

    def jobs(self) -> list[JobRecord]:
        """Every known job, submission order."""
        out: list[JobRecord] = []
        for sub in ("queued", "running", "done"):
            for path in (self.root / sub).glob("job-*.json"):
                record = self._read(path)
                if record is not None:
                    out.append(record)
        out.sort(key=lambda r: r.job_id)
        return out

    def depth(self) -> int:
        """Number of jobs waiting to be claimed."""
        return sum(1 for _ in (self.root / "queued").glob("job-*.json"))

    # -- server side -----------------------------------------------------

    def claim(self) -> JobRecord | None:
        """Atomically claim the oldest queued job, or None when idle.

        The winning rename moves the file into ``running/`` before the
        record is rewritten, so a competing server loses the race with an
        ``OSError`` and simply tries the next file.
        """
        for path in sorted((self.root / "queued").glob("job-*.json")):
            target = self.root / "running" / path.name
            try:
                os.replace(path, target)
            except OSError:
                continue  # another server claimed it first
            record = self._read(target)
            if record is None:
                continue
            record.state = JobState.RUNNING
            record.started_at = time.time()
            self._write(record)
            return record
        return None

    def cancel_requested(self, job_id: str) -> bool:
        """True when a ``.cancel`` marker exists for a running job."""
        return self._path(JobState.RUNNING, job_id).with_suffix(".cancel").exists()

    def finish(
        self,
        job_id: str,
        state: JobState,
        *,
        error: str | None = None,
        result_path: str | None = None,
        stats: dict[str, Any] | None = None,
    ) -> JobRecord | None:
        """Move a running job to its terminal record."""
        if not state.terminal:
            raise ValueError(f"finish() needs a terminal state, got {state}")
        running = self._path(JobState.RUNNING, job_id)
        record = self._read(running)
        if record is None:
            return None
        record.state = state
        record.finished_at = time.time()
        record.error = error
        record.result_path = result_path
        if stats:
            record.stats.update(stats)
        self._write(record)
        running.unlink(missing_ok=True)
        running.with_suffix(".cancel").unlink(missing_ok=True)
        return record
