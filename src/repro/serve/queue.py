"""The filesystem job queue: client ↔ server handoff without a socket.

Layout::

    <root>/COUNTER            # next job ordinal (read-modify-write under flock)
    <root>/.lock              # the queue's writer lock file
    <root>/queued/job-000001.json
    <root>/running/job-000002.json
    <root>/running/job-000002.cancel   # cancel marker for a running job
    <root>/done/job-000000.json

Every transition is an atomic ``os.replace`` of the job's JSON file
between state directories, so a client and a server (or two servers)
never see a half-written record and never claim the same job twice: the
claim is ``replace(queued/x, running/x)``, which exactly one process
wins.  Job ids are dense ordinals assigned under the lock, so queue
order is submission order.

Cancellation is cooperative: cancelling a *queued* job moves its file
straight to ``done/`` as cancelled; cancelling a *running* job drops a
``.cancel`` marker next to the running record, which the server polls
and translates into a scheduler-level cancel (in-flight evaluations
finish, everything pending fails fast).

Submission wake-ups: every ``submit`` bumps the mtime of a ``SUBMIT``
stamp file at the queue root and fires any in-process listeners
registered for that root.  An event-driven server waits on its wake
event instead of sleeping out a poll tick, so submit→claim latency is
bounded by a file touch, not half a poll interval; cross-process
servers compare :meth:`FileJobQueue.submit_stamp_ns` between passes.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Iterator

from repro.observe import current_telemetry
from repro.serve.jobs import JobRecord, JobSpec, JobState

try:  # pragma: no branch
    import fcntl

    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FLOCK = False

__all__ = [
    "FileJobQueue",
    "add_submit_listener",
    "remove_submit_listener",
]


def _count(name: str, value: float = 1) -> None:
    tel = current_telemetry()
    if tel is not None:
        tel.counters.add(name, value)


# In-process submit listeners, keyed by resolved queue root.  A server
# colocated with its submitters (tests, benchmarks, library embedding)
# gets microsecond wake-ups; remote submitters still reach it through
# the SUBMIT stamp mtime.
_submit_listeners: dict[str, list[Callable[[], None]]] = {}
_listeners_lock = threading.Lock()


def _root_key(root: str | Path) -> str:
    return str(Path(root).resolve())


def add_submit_listener(root: str | Path, listener: Callable[[], None]) -> None:
    """Fire *listener* after every in-process submit to *root*'s queue."""
    with _listeners_lock:
        _submit_listeners.setdefault(_root_key(root), []).append(listener)


def remove_submit_listener(
    root: str | Path, listener: Callable[[], None]
) -> None:
    with _listeners_lock:
        listeners = _submit_listeners.get(_root_key(root))
        if listeners is None:
            return
        try:
            listeners.remove(listener)
        except ValueError:
            pass
        if not listeners:
            del _submit_listeners[_root_key(root)]

_STATE_DIRS = {
    JobState.QUEUED: "queued",
    JobState.RUNNING: "running",
    JobState.DONE: "done",
    JobState.FAILED: "done",
    JobState.CANCELLED: "done",
}


class FileJobQueue:
    """Multi-process job queue over atomic file renames."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        for sub in ("queued", "running", "done"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)
        self._lock_path = self.root / ".lock"
        self._counter_path = self.root / "COUNTER"
        self._stamp_path = self.root / "SUBMIT"
        #: Size of the most recent ``queued/`` scan — the admission
        #: controller's queue-depth signal without an extra listing.
        self.last_scan_entries = 0

    @contextmanager
    def _locked(self) -> Iterator[None]:
        self._lock_path.touch(exist_ok=True)
        with self._lock_path.open("r+") as fh:
            if _HAVE_FLOCK:
                fcntl.flock(fh, fcntl.LOCK_EX)
            try:
                yield
            finally:
                if _HAVE_FLOCK:
                    fcntl.flock(fh, fcntl.LOCK_UN)

    def _next_id(self) -> str:
        # The read-modify-write is atomic *and* durable: the new count is
        # fsynced to a tmp file and published with os.replace, so a crash
        # anywhere in the window leaves either the old or the new COUNTER
        # intact — never a truncated file that would restart ordinals at 0
        # and hand a duplicate job id to the next submitter.
        with self._locked():
            try:
                current = int(self._counter_path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                current = 0
            tmp = self._counter_path.with_suffix(".tmp")
            with tmp.open("w", encoding="utf-8") as fh:
                fh.write(str(current + 1))
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self._counter_path)
        return f"job-{current:06d}"

    def _path(self, state: JobState, job_id: str) -> Path:
        return self.root / _STATE_DIRS[state] / f"{job_id}.json"

    def _write(self, record: JobRecord) -> Path:
        """Atomically (re)write a record into its state directory."""
        path = self._path(record.state, record.job_id)
        tmp = path.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(record.as_dict(), indent=2, sort_keys=True) + "\n"
            )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        return path

    @staticmethod
    def _read(path: Path) -> JobRecord | None:
        try:
            return JobRecord.from_dict(
                json.loads(path.read_text(encoding="utf-8"))
            )
        except (OSError, json.JSONDecodeError, KeyError, ValueError):
            # Mid-rename or half-written by a crashed writer: skip, the
            # owner (or the next scan) will see it settled.
            return None

    # -- client side -----------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Enqueue a job; returns the queued record (with its id)."""
        record = JobRecord(
            job_id=self._next_id(),
            spec=spec,
            state=JobState.QUEUED,
            submitted_at=time.time(),
        )
        self._write(record)
        self._notify_submit()
        return record

    def _notify_submit(self) -> None:
        # The stamp is touched *after* the record is visible in queued/,
        # so a server woken by the mtime change always finds the job.
        self._stamp_path.touch(exist_ok=True)
        with _listeners_lock:
            listeners = list(_submit_listeners.get(_root_key(self.root), ()))
        for listener in listeners:
            listener()

    def submit_stamp_ns(self) -> int:
        """mtime (ns) of the SUBMIT stamp — 0 before the first submit."""
        try:
            return self._stamp_path.stat().st_mtime_ns
        except OSError:
            return 0

    def cancel(self, job_id: str) -> JobState | None:
        """Request cancellation; returns the state the request landed on.

        Queued jobs cancel immediately (their file moves to ``done/``);
        running jobs get a marker the server acts on; terminal jobs are
        left alone.  ``None`` means the id is unknown.
        """
        with self._locked():
            queued = self._path(JobState.QUEUED, job_id)
            record = self._read(queued)
            if record is not None:
                record.state = JobState.CANCELLED
                record.finished_at = time.time()
                self._write(record)
                queued.unlink(missing_ok=True)
                return JobState.CANCELLED
            running = self._path(JobState.RUNNING, job_id)
            if running.exists():
                running.with_suffix(".cancel").touch()
                return JobState.RUNNING
            done = self._path(JobState.DONE, job_id)
            done_record = self._read(done)
            if done_record is not None:
                return done_record.state
        return None

    def get(self, job_id: str) -> JobRecord | None:
        for state in (JobState.QUEUED, JobState.RUNNING, JobState.DONE):
            record = self._read(self._path(state, job_id))
            if record is not None:
                return record
        return None

    def jobs(self) -> list[JobRecord]:
        """Every known job, submission order."""
        out: list[JobRecord] = []
        for sub in ("queued", "running", "done"):
            for path in (self.root / sub).glob("job-*.json"):
                record = self._read(path)
                if record is not None:
                    out.append(record)
        out.sort(key=lambda r: r.job_id)
        return out

    def depth(self) -> int:
        """Number of jobs waiting to be claimed."""
        return len(self._scan_queued())

    # -- server side -----------------------------------------------------

    def _scan_queued(self) -> list[Path]:
        """One sorted listing of ``queued/`` — the per-pass scan.

        Every queue operation that needs queued entries shares this scan,
        and ``serve.claim_scan_entries`` counts what it walked, so the
        directory-scan cost of the serve loop is visible in traces.
        """
        entries = sorted((self.root / "queued").glob("job-*.json"))
        self.last_scan_entries = len(entries)
        _count("serve.claim_scan_entries", len(entries))
        return entries

    def claim_many(self, limit: int = 1) -> list[JobRecord]:
        """Atomically claim up to *limit* oldest queued jobs via one scan.

        The winning rename moves each file into ``running/`` before the
        record is rewritten, so a competing server loses the race with an
        ``OSError`` and simply tries the next file.  One directory scan
        serves the whole pass regardless of how many claims the admission
        controller budgeted.
        """
        claimed: list[JobRecord] = []
        if limit < 1:
            return claimed
        for path in self._scan_queued():
            if len(claimed) >= limit:
                break
            target = self.root / "running" / path.name
            try:
                os.replace(path, target)
            except OSError:
                continue  # another server claimed it first
            record = self._read(target)
            if record is None:
                continue
            record.state = JobState.RUNNING
            record.started_at = time.time()
            self._write(record)
            claimed.append(record)
        return claimed

    def claim(self) -> JobRecord | None:
        """Atomically claim the oldest queued job, or None when idle."""
        claimed = self.claim_many(1)
        return claimed[0] if claimed else None

    def cancel_requested(self, job_id: str) -> bool:
        """True when a ``.cancel`` marker exists for a running job."""
        return self._path(JobState.RUNNING, job_id).with_suffix(".cancel").exists()

    def finish(
        self,
        job_id: str,
        state: JobState,
        *,
        error: str | None = None,
        result_path: str | None = None,
        stats: dict[str, Any] | None = None,
    ) -> JobRecord | None:
        """Move a running job to its terminal record."""
        if not state.terminal:
            raise ValueError(f"finish() needs a terminal state, got {state}")
        running = self._path(JobState.RUNNING, job_id)
        record = self._read(running)
        if record is None:
            return None
        record.state = state
        record.finished_at = time.time()
        record.error = error
        record.result_path = result_path
        if stats:
            record.stats.update(stats)
        self._write(record)
        running.unlink(missing_ok=True)
        running.with_suffix(".cancel").unlink(missing_ok=True)
        return record
