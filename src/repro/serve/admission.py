"""Admission control for the serve loop: how many jobs to claim, when.

PR 8's serve loop admitted work on a fixed stagger — one claim per
``poll_interval_s`` tick — which is a *policy* (keep an earlier tenant
ahead of an overlapping one so its runs become the later tenant's memo
hits) implemented as a *constant*.  This module makes the policy a
first-class object the server consults every pass:

- :class:`FixedAdmission` reproduces the PR 8 stagger bit-for-bit: one
  claim per tick, always wait out the poll interval, never wake early
  on a submit.  It is the reference mode equivalence tests pin against.
- :class:`AdaptiveAdmission` is the AutoThrottle-style AIMD controller
  the ROADMAP names.  Its two signals are *fleet utilization* (running
  evaluations over scheduler capacity) and the *warm-hit ratio* of the
  last window (memo + store + coalesced answers over all answers):
  while the pool has headroom and overlapping tenants are feeding each
  other cache hits, claiming more jobs per pass is nearly free, so the
  claim budget grows additively; once in-flight saturates or cold
  tool-runs dominate the window, the budget halves back toward the
  one-claim stagger (multiplicative decrease).  It also opts the server
  into the event-driven claim loop: a queue submit wakes the loop
  immediately instead of riding out the tick.

Controllers are pure decision functions over :class:`AdmissionSignals`
snapshots — no clocks, no I/O — so the AIMD trajectory is unit-testable
with synthetic signal sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = [
    "AdmissionDecision",
    "AdmissionSignals",
    "AdaptiveAdmission",
    "FixedAdmission",
    "make_admission",
]


@dataclass(frozen=True)
class AdmissionSignals:
    """One serve-loop pass's view of the service, as the controller sees it.

    ``warm_hits`` / ``fresh_runs`` are *deltas* since the previous pass
    (the window), not lifetime totals — the controller reacts to what the
    fleet is doing now, not to a long-dead cold start.
    """

    utilization: float  #: in-flight evaluations / scheduler capacity, 0..1
    warm_hits: int  #: memo + store + coalesced answers this window
    fresh_runs: int  #: tool dispatches this window
    queue_depth: int  #: jobs still waiting in queued/


@dataclass(frozen=True)
class AdmissionDecision:
    """What the serve loop should do this pass."""

    claims: int  #: maximum jobs to claim from the queue this pass
    wait_s: float  #: how long to wait for a wake event before the next pass


class FixedAdmission:
    """The PR 8 stagger verbatim: one claim per tick, no submit wake-ups."""

    name = "fixed"
    #: Fixed mode keeps the poll-driven loop: the wait is a plain timer
    #: and a queue submit does *not* cut it short, preserving the exact
    #: claim spacing earlier releases shipped.
    event_driven = False

    def __init__(self, poll_interval_s: float = 0.05) -> None:
        if poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {poll_interval_s}"
            )
        self.poll_interval_s = poll_interval_s
        self.decisions = 0

    def decide(self, signals: AdmissionSignals) -> AdmissionDecision:
        self.decisions += 1
        return AdmissionDecision(claims=1, wait_s=self.poll_interval_s)

    def stats(self) -> dict[str, Any]:
        return {
            "mode": self.name,
            "decisions": self.decisions,
            "claim_budget": 1,
        }


class AdaptiveAdmission:
    """AIMD claim budget over fleet utilization and the warm-hit ratio.

    The budget starts at one claim per pass (the stagger).  Each pass:

    - **Back off** (``budget *= backoff``, floored at 1) when the pool is
      saturated (``utilization >= util_high``) or the window ran mostly
      cold tool dispatches (``warm ratio < warm_low`` with at least one
      fresh run) — admitting more tenants then only deepens the convoy.
    - **Otherwise grow** (``budget += increase``, capped at
      ``max_claim``): the pool has headroom and overlapping tenants are
      resolving each other's points from memo/store/coalescing, so the
      marginal admitted job is cheap.

    A window with no answers at all (idle service) keeps growing toward
    the cap — an idle pool should drain a burst of submissions in one
    pass, which is exactly what the event-driven wake enables.
    """

    name = "adaptive"
    event_driven = True

    def __init__(
        self,
        poll_interval_s: float = 0.05,
        max_claim: int = 8,
        increase: float = 1.0,
        backoff: float = 0.5,
        util_high: float = 0.85,
        warm_low: float = 0.25,
    ) -> None:
        if poll_interval_s <= 0:
            raise ValueError(
                f"poll_interval_s must be > 0, got {poll_interval_s}"
            )
        if max_claim < 1:
            raise ValueError(f"max_claim must be >= 1, got {max_claim}")
        if increase <= 0:
            raise ValueError(f"increase must be > 0, got {increase}")
        if not 0 < backoff < 1:
            raise ValueError(f"backoff must be in (0, 1), got {backoff}")
        #: The heartbeat between passes when nothing wakes the loop —
        #: cancel markers and the STOP file are still polled on it.
        self.poll_interval_s = poll_interval_s
        self.max_claim = max_claim
        self.increase = increase
        self.backoff = backoff
        self.util_high = util_high
        self.warm_low = warm_low
        self._budget = 1.0
        self.decisions = 0
        self.increases = 0
        self.backoffs = 0

    @property
    def claim_budget(self) -> int:
        return int(self._budget)

    def decide(self, signals: AdmissionSignals) -> AdmissionDecision:
        self.decisions += 1
        answered = signals.warm_hits + signals.fresh_runs
        warm_ratio = (signals.warm_hits / answered) if answered else None
        cold = (
            warm_ratio is not None
            and warm_ratio < self.warm_low
            and signals.fresh_runs > 0
        )
        if signals.utilization >= self.util_high or cold:
            self._budget = max(1.0, self._budget * self.backoff)
            self.backoffs += 1
        else:
            self._budget = min(float(self.max_claim), self._budget + self.increase)
            self.increases += 1
        return AdmissionDecision(
            claims=int(self._budget), wait_s=self.poll_interval_s
        )

    def stats(self) -> dict[str, Any]:
        return {
            "mode": self.name,
            "decisions": self.decisions,
            "increases": self.increases,
            "backoffs": self.backoffs,
            "claim_budget": self.claim_budget,
        }


def make_admission(
    mode: str,
    poll_interval_s: float,
    *,
    max_claim: int = 8,
    backoff: float = 0.5,
    util_high: float = 0.85,
    warm_low: float = 0.25,
) -> FixedAdmission | AdaptiveAdmission:
    """Build the controller the ``--admission`` flag names."""
    if mode == "fixed":
        return FixedAdmission(poll_interval_s)
    if mode == "adaptive":
        return AdaptiveAdmission(
            poll_interval_s,
            max_claim=max_claim,
            backoff=backoff,
            util_high=util_high,
            warm_low=warm_low,
        )
    raise ValueError(f"unknown admission mode {mode!r}")
