"""Job records for the DSE service.

A *job* is one DSE session requested by a client: a design to explore
plus the exploration knobs the ``dse`` CLI would take.  The spec is a
plain JSON-serializable dataclass so it can travel through the
filesystem job queue; the record wraps it with the service-side
lifecycle state (queued → running → done/failed/cancelled) and, once
finished, the per-tenant accounting the ``jobs`` CLI reports (tool
runs, store hits, simulated seconds).
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["JobSpec", "JobState", "JobRecord"]


class JobState(str, enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def __str__(self) -> str:  # pragma: no cover - repr sugar
        return self.value

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass(frozen=True)
class JobSpec:
    """What to explore — the client's request, JSON-round-trippable."""

    design: str
    seed: int = 0
    generations: int = 5
    population: int = 8
    pretrain: int = 0
    use_model: bool = False
    algorithm: str = "nsga2"
    part: str = "XC7K70T"
    target_period_ns: float = 1.0
    soft_deadline_s: float | None = None

    def as_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class JobRecord:
    """One job's service-side state, as stored in the queue files."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    result_path: str | None = None
    stats: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "job_id": self.job_id,
            "spec": self.spec.as_dict(),
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "result_path": self.result_path,
            "stats": dict(self.stats),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        return cls(
            job_id=str(data["job_id"]),
            spec=JobSpec.from_dict(data.get("spec", {})),
            state=JobState(data.get("state", "queued")),
            submitted_at=float(data.get("submitted_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error"),
            result_path=data.get("result_path"),
            stats=dict(data.get("stats", {})),
        )
