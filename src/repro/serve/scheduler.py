"""The fair asyncio scheduler multiplexing jobs over one worker pool.

This is the engine/scheduler/downloader split the ROADMAP points at
(scrapy's architecture): sessions *produce* evaluation requests, the
scheduler decides *which* request runs next, and a bounded thread pool
*executes* them.  One :class:`FairScheduler` serves every job in the
server process:

- **Per-job lanes.**  Each registered job gets a FIFO lane plus a slot
  limit — the most evaluations it may have running at once — so a wide
  job cannot monopolize the pool.
- **Fair round-robin dispatch.**  The dispatcher coroutine walks the
  lane rotation, taking at most one request per lane per turn; two jobs
  with queued work interleave 1:1 regardless of how fast either enqueues.
- **Backpressure.**  The pool has a hard capacity; when it saturates,
  requests queue in their lane, and each lane itself is bounded
  (``max_pending``): a producer thread calling :meth:`submit` blocks
  once its job has that many requests queued or running.  Sessions
  therefore slow down to the pool's pace instead of ballooning memory.
- **Single-flight coalescing.**  Requests submitted with a ``key``
  dedup in flight: the first keyed request is the *primary* that takes
  an executor slot; later same-key requests from any lane attach to it
  as followers and resolve from its result (optionally through a
  per-follower ``transform``).  N tenants racing on one configuration
  pay one run, charged to the lane that dispatched it, while each
  follower lane records a ``coalesced`` answer.
- **Cancel.**  Cancelling a job fails its queued requests fast with
  :class:`JobCancelledError` (in-flight evaluations finish — a tool run
  is not preemptible — and their results still land in the shared
  store for future tenants).
- **Graceful drain.**  :meth:`drain` stops intake and waits for every
  accepted request to resolve, so shutdown never abandons a session
  mid-batch.

The event loop runs in a dedicated daemon thread; every public method is
thread-safe and callable from job-runner threads.
"""

from __future__ import annotations

import asyncio
import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError

__all__ = ["FairScheduler", "JobCancelledError", "SchedulerClosed"]


class JobCancelledError(ReproError):
    """A queued evaluation request was dropped because its job was cancelled."""

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id} was cancelled")
        self.job_id = job_id


class SchedulerClosed(ReproError):
    """A request was submitted after the scheduler stopped accepting work."""


@dataclass
class _Follower:
    """A coalesced request riding on another lane's in-flight primary.

    Keeps its own ``fn`` so it can be *promoted* to a primary if the
    lane that dispatched the shared run cancels before it completes; the
    optional ``transform`` reshapes the primary's result into this
    tenant's answer (e.g. cache-pricing a shared evaluation).
    """

    job_id: str
    fn: Callable[[], Any]
    future: Future[Any]
    transform: Callable[[Any], Any] | None = None


@dataclass
class _Request:
    fn: Callable[[], Any]
    future: Future[Any]
    #: Single-flight key: requests sharing a non-None key coalesce onto
    #: whichever of them is queued or running first.
    key: Any = None
    followers: list[_Follower] = field(default_factory=list)


@dataclass
class _Lane:
    """One job's view of the scheduler (mutated only on the loop thread)."""

    slots: int
    queue: deque[_Request] = field(default_factory=deque)
    running: int = 0
    cancelled: bool = False
    submitted: int = 0
    completed: int = 0
    dropped: int = 0
    #: Requests answered by another lane's run via single-flight
    #: coalescing — this lane never occupied an executor slot for them.
    coalesced: int = 0
    # Producer-side backpressure: queued + running per job is bounded.
    gate: threading.Semaphore | None = None


class FairScheduler:
    """Round-robin multiplexer of per-job request lanes over a thread pool."""

    def __init__(
        self,
        capacity: int = 4,
        max_pending: int | None = None,
        thread_name_prefix: str = "dse-eval",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.capacity = capacity
        self.max_pending = max_pending
        self._executor = ThreadPoolExecutor(
            max_workers=capacity, thread_name_prefix=thread_name_prefix
        )
        self._lanes: dict[str, _Lane] = {}
        self._rotation: deque[str] = deque()
        # Single-flight table: key -> the primary request (queued or
        # running) that later keyed submits attach to as followers.
        # Loop-thread confined, like the lanes.
        self._inflight_keys: dict[Any, _Request] = {}
        self._coalesced_total = 0
        self._in_flight = 0
        self._peak_in_flight = 0
        self._draining = False
        self._closed = False
        self._idle = threading.Event()
        self._idle.set()
        self._loop = asyncio.new_event_loop()
        self._wakeup: asyncio.Event | None = None
        started = threading.Event()
        self._thread = threading.Thread(
            target=self._run, args=(started,), name="dse-scheduler", daemon=True
        )
        self._thread.start()
        started.wait()

    # -- loop thread ------------------------------------------------------

    def _run(self, started: threading.Event) -> None:
        asyncio.set_event_loop(self._loop)
        self._wakeup = asyncio.Event()
        started.set()
        try:
            self._loop.run_until_complete(self._dispatch())
        finally:
            self._loop.close()

    async def _dispatch(self) -> None:
        assert self._wakeup is not None
        while True:
            await self._wakeup.wait()
            self._wakeup.clear()
            if self._closed:
                return
            # Walk the rotation until a full pass makes no progress:
            # at most one dispatch per lane per pass is what makes the
            # schedule fair — a lane with 50 queued requests advances no
            # faster per turn than one with a single request.
            progress = True
            while progress and self._in_flight < self.capacity:
                progress = False
                for _ in range(len(self._rotation)):
                    if self._in_flight >= self.capacity:
                        break
                    job_id = self._rotation[0]
                    self._rotation.rotate(-1)
                    lane = self._lanes.get(job_id)
                    if lane is None or not lane.queue or lane.running >= lane.slots:
                        continue
                    request = lane.queue.popleft()
                    if not request.future.set_running_or_notify_cancel():
                        self._release(lane)
                        self._drop_primary(request)
                        continue
                    lane.running += 1
                    self._in_flight += 1
                    self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
                    task = self._loop.run_in_executor(self._executor, request.fn)
                    task.add_done_callback(
                        lambda done, j=job_id, r=request: self._finish(j, r, done)
                    )
                    progress = True
            self._check_idle()

    def _finish(
        self, job_id: str, request: _Request, done: asyncio.Future[Any]
    ) -> None:
        # Runs on the loop thread (asyncio future callbacks do).
        self._in_flight -= 1
        lane = self._lanes.get(job_id)
        if lane is not None:
            lane.running -= 1
            lane.completed += 1
            self._release(lane)
        if request.key is not None:
            self._inflight_keys.pop(request.key, None)
        exc = done.exception()
        if exc is not None:
            request.future.set_exception(exc)
        else:
            request.future.set_result(done.result())
        for follower in request.followers:
            self._resolve_follower(follower, exc, done)
        request.followers.clear()
        assert self._wakeup is not None
        self._wakeup.set()
        self._check_idle()

    def _resolve_follower(
        self,
        follower: _Follower,
        exc: BaseException | None,
        done: asyncio.Future[Any],
    ) -> None:
        flane = self._lanes.get(follower.job_id)
        if flane is not None:
            flane.coalesced += 1
            self._release(flane)
        self._coalesced_total += 1
        if not follower.future.set_running_or_notify_cancel():
            return
        if exc is not None:
            follower.future.set_exception(exc)
            return
        try:
            value = done.result()
            if follower.transform is not None:
                value = follower.transform(value)
        except BaseException as terr:  # noqa: BLE001 - surfaced on the future
            follower.future.set_exception(terr)
        else:
            follower.future.set_result(value)

    def _drop_primary(self, request: _Request) -> None:
        """A keyed primary left the queue unrun: promote a follower.

        The first follower whose lane is still live becomes the new
        primary for the key — queued at the *front* of its own lane (it
        already waited its turn attached to the dropped request) with the
        remaining followers carried over.  Followers of dead lanes fail
        fast like any cancelled request.
        """
        if request.key is None:
            if request.followers:  # pragma: no cover - defensive
                raise AssertionError("followers on an unkeyed request")
            return
        self._inflight_keys.pop(request.key, None)
        followers = request.followers
        request.followers = []
        while followers:
            follower = followers.pop(0)
            lane = self._lanes.get(follower.job_id)
            if lane is None or lane.cancelled:
                if lane is not None:
                    lane.dropped += 1
                    self._release(lane)
                if follower.future.set_running_or_notify_cancel():
                    follower.future.set_exception(
                        JobCancelledError(follower.job_id)
                    )
                continue
            promoted = _Request(
                fn=follower.fn,
                future=follower.future,
                key=request.key,
                followers=followers,
            )
            self._inflight_keys[request.key] = promoted
            lane.queue.appendleft(promoted)
            assert self._wakeup is not None
            self._wakeup.set()
            return

    @staticmethod
    def _release(lane: _Lane) -> None:
        if lane.gate is not None:
            lane.gate.release()

    def _check_idle(self) -> None:
        if self._in_flight == 0 and not any(
            lane.queue for lane in self._lanes.values()
        ):
            self._idle.set()
        else:
            self._idle.clear()

    def _call(self, fn: Callable[[], Any]) -> Any:
        """Run *fn* on the loop thread and wait for its return value."""
        box: dict[str, Any] = {}
        ready = threading.Event()

        def runner() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # pragma: no cover - defensive
                box["error"] = exc
            ready.set()

        self._loop.call_soon_threadsafe(runner)
        ready.wait()
        if "error" in box:
            raise box["error"]
        return box["value"]

    # -- public (any thread) ----------------------------------------------

    def register_job(self, job_id: str, slots: int = 1) -> None:
        """Create the job's lane; ``slots`` caps its concurrent evaluations."""
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")

        def _register() -> None:
            if self._closed or self._draining:
                raise SchedulerClosed("scheduler is draining; no new jobs")
            if job_id in self._lanes:
                raise ValueError(f"job {job_id!r} already registered")
            gate = (
                threading.Semaphore(self.max_pending)
                if self.max_pending is not None
                else None
            )
            self._lanes[job_id] = _Lane(slots=slots, gate=gate)
            self._rotation.append(job_id)

        self._call(_register)

    def unregister_job(self, job_id: str) -> None:
        """Drop a job's lane (cancels anything still queued)."""
        self.cancel_job(job_id)

        def _unregister() -> None:
            self._lanes.pop(job_id, None)
            try:
                self._rotation.remove(job_id)
            except ValueError:
                pass
            self._check_idle()

        self._call(_unregister)

    def submit(
        self,
        job_id: str,
        fn: Callable[[], Any],
        *,
        key: Any = None,
        transform: Callable[[Any], Any] | None = None,
    ) -> Future[Any]:
        """Enqueue one evaluation request for *job_id*; returns its future.

        Blocks the calling thread while the job is at its ``max_pending``
        bound — that is the backpressure propagating to the session.

        A non-None *key* opts the request into single-flight coalescing:
        if another request with the same key is already queued or running,
        this one attaches to it as a follower — no executor slot, no
        duplicate ``fn()`` — and resolves with ``transform(result)`` (or
        the shared result verbatim) when the primary finishes.  The run
        is charged to the lane that dispatched it; the follower's lane
        counts a ``coalesced`` answer instead.  Followers still hold
        their backpressure slot until resolution, and a cancelled
        primary's followers are promoted rather than dropped.
        """
        lane = self._lanes.get(job_id)  # racy peek, revalidated on the loop
        if lane is not None and lane.gate is not None:
            lane.gate.acquire()
        future: Future[Any] = Future()

        def _enqueue() -> None:
            target = self._lanes.get(job_id)
            if target is None:
                future.set_exception(
                    SchedulerClosed(f"job {job_id!r} is not registered")
                )
                return
            if target.cancelled:
                self._release(target)
                future.set_exception(JobCancelledError(job_id))
                return
            if self._draining or self._closed:
                self._release(target)
                future.set_exception(
                    SchedulerClosed("scheduler is draining; request rejected")
                )
                return
            if key is not None:
                primary = self._inflight_keys.get(key)
                if primary is not None:
                    primary.followers.append(
                        _Follower(job_id, fn, future, transform)
                    )
                    target.submitted += 1
                    return
            request = _Request(fn, future, key=key)
            if key is not None:
                self._inflight_keys[key] = request
            target.queue.append(request)
            target.submitted += 1
            self._idle.clear()
            assert self._wakeup is not None
            self._wakeup.set()

        self._loop.call_soon_threadsafe(_enqueue)
        return future

    def cancel_job(self, job_id: str) -> int:
        """Fail the job's queued requests fast; returns how many dropped.

        In-flight evaluations are left to finish: a tool run is not
        preemptible, and its result is still a store/memo asset.
        """

        def _cancel() -> int:
            lane = self._lanes.get(job_id)
            if lane is None:
                return 0
            lane.cancelled = True
            dropped = 0
            while lane.queue:
                request = lane.queue.popleft()
                self._release(lane)
                if request.future.set_running_or_notify_cancel():
                    request.future.set_exception(JobCancelledError(job_id))
                # Another lane's followers riding on this primary are not
                # cancelled — the front survivor is promoted in its place.
                self._drop_primary(request)
                dropped += 1
            # Followers of *this* job attached to other lanes' primaries
            # fail fast too (the shared run itself keeps going — it is
            # some other tenant's answer).
            for primary in self._inflight_keys.values():
                kept: list[_Follower] = []
                for follower in primary.followers:
                    if follower.job_id != job_id:
                        kept.append(follower)
                        continue
                    self._release(lane)
                    if follower.future.set_running_or_notify_cancel():
                        follower.future.set_exception(JobCancelledError(job_id))
                    dropped += 1
                primary.followers = kept
            lane.dropped += dropped
            self._check_idle()
            return dropped

        return self._call(_cancel)

    def drain(self, timeout: float | None = None) -> bool:
        """Stop intake and wait until every accepted request resolved."""

        def _seal() -> None:
            self._draining = True
            self._check_idle()

        self._call(_seal)
        return self._idle.wait(timeout)

    def close(self, timeout: float | None = None) -> bool:
        """Drain, then stop the loop thread and the worker pool."""
        drained = self.drain(timeout)

        def _stop() -> None:
            self._closed = True
            assert self._wakeup is not None
            self._wakeup.set()

        self._call(_stop)
        self._thread.join(timeout)
        self._executor.shutdown(wait=True)
        return drained

    def __enter__(self) -> "FairScheduler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def load(self) -> dict[str, Any]:
        """The cheap utilization snapshot the admission controller reads."""

        def _load() -> dict[str, Any]:
            return {
                "in_flight": self._in_flight,
                "capacity": self.capacity,
                "coalesced_hits": self._coalesced_total,
            }

        return self._call(_load)

    def stats(self) -> dict[str, Any]:
        """Point-in-time snapshot (consistent: taken on the loop thread)."""

        def _snapshot() -> dict[str, Any]:
            return {
                "capacity": self.capacity,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak_in_flight,
                "queue_depth": sum(
                    len(lane.queue) for lane in self._lanes.values()
                ),
                "coalesced_hits": self._coalesced_total,
                "draining": self._draining,
                "jobs": {
                    job_id: {
                        "slots": lane.slots,
                        "queued": len(lane.queue),
                        "running": lane.running,
                        "submitted": lane.submitted,
                        "completed": lane.completed,
                        "dropped": lane.dropped,
                        "coalesced": lane.coalesced,
                        "cancelled": lane.cancelled,
                    }
                    for job_id, lane in self._lanes.items()
                },
            }

        return self._call(_snapshot)
