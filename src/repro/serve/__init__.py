"""``repro.serve`` — DSE as a service.

The ROADMAP's north-star item: many concurrent DSE sessions, one shared
evaluation backend, so one tenant's Vivado-equivalent run is every
tenant's cache hit (the sharing economics Simopt and CRADLE motivate —
see PAPERS.md).  Four pieces, mirroring scrapy's engine/scheduler/
downloader split:

- :mod:`repro.serve.jobs` — the job spec/record vocabulary.
- :mod:`repro.serve.queue` — :class:`FileJobQueue`, the client↔server
  handoff over atomic file renames (``submit``/``jobs``/``cancel`` CLI).
- :mod:`repro.serve.scheduler` — :class:`FairScheduler`, the asyncio
  round-robin multiplexer with per-job slots, bounded-lane backpressure,
  cancel, and graceful drain.
- :mod:`repro.serve.fleet` — :class:`EvaluatorFleet`, one shared
  evaluator per spec over the sharded store, plus the
  :class:`SchedulerBoundEvaluator` facade sessions bind via
  ``ApproximateFitness.set_batch_evaluator``.
- :mod:`repro.serve.admission` — the claim-admission controllers:
  :class:`FixedAdmission` (the classic one-claim-per-tick stagger) and
  :class:`AdaptiveAdmission` (AIMD over utilization + warm-hit ratio,
  with event-driven submit wake-ups).
- :mod:`repro.serve.server` — :class:`DseServer`, the serve loop tying
  them together.

The service never changes answers: a job's front is byte-identical to
the same session run standalone; only *who pays* for each tool run
differs.
"""

from repro.serve.admission import (
    AdaptiveAdmission,
    AdmissionDecision,
    AdmissionSignals,
    FixedAdmission,
    make_admission,
)
from repro.serve.fleet import EvaluatorFleet, ScheduledBatch, SchedulerBoundEvaluator
from repro.serve.jobs import JobRecord, JobSpec, JobState
from repro.serve.queue import (
    FileJobQueue,
    add_submit_listener,
    remove_submit_listener,
)
from repro.serve.scheduler import FairScheduler, JobCancelledError, SchedulerClosed
from repro.serve.server import DseServer

__all__ = [
    "AdaptiveAdmission",
    "AdmissionDecision",
    "AdmissionSignals",
    "DseServer",
    "EvaluatorFleet",
    "FairScheduler",
    "FileJobQueue",
    "FixedAdmission",
    "JobCancelledError",
    "JobRecord",
    "JobSpec",
    "JobState",
    "ScheduledBatch",
    "SchedulerBoundEvaluator",
    "SchedulerClosed",
    "add_submit_listener",
    "make_admission",
    "remove_submit_listener",
]
