"""The shared evaluator fleet and its per-job scheduler facade.

The server keeps one :class:`~repro.core.parallel.ParallelPointEvaluator`
per distinct :class:`~repro.core.parallel.EvaluatorSpec` — the fleet.
Every job whose session resolves to the same spec (same design source,
part, step, directives, period, seed, metrics) shares that evaluator's
cross-batch memo, in-flight dedup, and persistent-store binding, so the
*first* tenant to evaluate a configuration pays for it and every later
tenant replays it as a cache answer.

Fleet evaluators are built with ``workers=0``: each evaluation runs
inline on whichever scheduler pool thread the request was dispatched to.
Execution parallelism comes from the scheduler's pool, not from nested
process pools — the scheduler's capacity is the *only* concurrency bound
in the server.  A per-spec mutex serializes evaluations that share an
evaluator (its memo and tool session are single-threaded state), which
also makes cross-tenant dedup deterministic: two jobs racing on the same
configuration resolve to one tool run and one memo hit, never two runs.

:class:`SchedulerBoundEvaluator` is the facade a session binds via
``ApproximateFitness.set_batch_evaluator``: it exposes the same
``submit_many`` surface as ``ParallelPointEvaluator`` but routes each
point as one scheduler request tagged with the owning job, so the fair
round-robin interleaves *points*, not whole batches.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable, Mapping, Sequence

from repro.core.parallel import (
    EvaluationFailure,
    EvaluatorSpec,
    ParallelPointEvaluator,
    RemoteEvaluationError,
)
from repro.serve.scheduler import FairScheduler

__all__ = ["EvaluatorFleet", "SchedulerBoundEvaluator", "ScheduledBatch"]


class EvaluatorFleet:
    """One serial evaluator (plus lock) per spec, shared across jobs."""

    def __init__(self, store_root: str | None = None, shards: int = 8) -> None:
        self.store_root = store_root
        self.shards = shards
        self._lock = threading.Lock()
        self._members: dict[EvaluatorSpec, ParallelPointEvaluator] = {}
        self._member_locks: dict[EvaluatorSpec, threading.Lock] = {}

    def _member(
        self, spec: EvaluatorSpec
    ) -> tuple[ParallelPointEvaluator, threading.Lock]:
        with self._lock:
            evaluator = self._members.get(spec)
            if evaluator is None:
                store = None
                if self.store_root is not None:
                    from repro.cache import open_store

                    # Each member opens its own handle on the shared
                    # (sharded) store: in-memory indexes stay
                    # single-threaded, while the on-disk flock keeps
                    # cross-handle appends first-writer-wins.
                    store = open_store(self.store_root, shards=self.shards)
                evaluator = ParallelPointEvaluator(
                    spec=spec, workers=0, store=store
                )
                self._members[spec] = evaluator
                self._member_locks[spec] = threading.Lock()
            return evaluator, self._member_locks[spec]

    def bind(
        self, scheduler: FairScheduler, job_id: str, spec: EvaluatorSpec
    ) -> "SchedulerBoundEvaluator":
        """The facade a job's session plugs into its fitness."""
        evaluator, lock = self._member(spec)
        return SchedulerBoundEvaluator(scheduler, job_id, evaluator, lock)

    def specs(self) -> list[EvaluatorSpec]:
        with self._lock:
            return list(self._members)

    def stats(self) -> dict[str, Any]:
        """Fleet-wide dedup accounting (summed over members)."""
        with self._lock:
            members = list(self._members.values())
        return {
            "members": len(members),
            "dispatched": sum(m.dispatched for m in members),
            "memo_hits": sum(m.memo_hits for m in members),
            "store_hits": sum(m.store_hits for m in members),
            "store_puts": sum(m.store_puts for m in members),
            "drc_rejections": sum(m.drc_rejections for m in members),
        }

    def close(self) -> None:
        with self._lock:
            members = list(self._members.values())
            self._members.clear()
            self._member_locks.clear()
        for member in members:
            member.close()


class ScheduledBatch:
    """Pending results of one ``submit_many`` through the scheduler.

    Duck-types the :class:`~repro.core.parallel.PendingBatch` surface the
    fitness layer consumes (``done()`` / ``results(on_error)``); results
    come back in request order regardless of scheduler interleaving.  A
    cancelled job's pending points surface as the
    :class:`~repro.serve.scheduler.JobCancelledError` their futures
    carry.
    """

    def __init__(self, futures: Sequence[Future[Any]]) -> None:
        self._futures = list(futures)

    def __len__(self) -> int:
        return len(self._futures)

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def results(self, on_error: str = "raise") -> list[Any]:
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        out: list[Any] = []
        for future in self._futures:
            result = future.result()
            if on_error == "raise" and isinstance(result, EvaluationFailure):
                raise RemoteEvaluationError(result.original_type, result.message)
            out.append(result)
        return out


class SchedulerBoundEvaluator:
    """``ParallelPointEvaluator``-shaped facade over (scheduler, job, member).

    Owned by the server — ``close()`` here only detaches; the member
    evaluator and its memo live on for the next tenant.
    """

    def __init__(
        self,
        scheduler: FairScheduler,
        job_id: str,
        member: ParallelPointEvaluator,
        member_lock: threading.Lock,
    ) -> None:
        self.scheduler = scheduler
        self.job_id = job_id
        self._member = member
        self._member_lock = member_lock
        # Per-tenant attribution (the member's own counters are shared
        # across every job on the spec): what *this* job's requests cost.
        self.tool_runs = 0
        self.cache_hits = 0
        self.failures = 0

    def submit_many(self, points: Sequence[Mapping[str, int]]) -> ScheduledBatch:
        """One scheduler request per point, fair-queued under this job."""
        futures = [
            self.scheduler.submit(self.job_id, self._one(dict(p))) for p in points
        ]
        return ScheduledBatch(futures)

    def _one(self, params: dict[str, int]) -> Callable[[], Any]:
        def run() -> Any:
            # The member's memo/in-flight/tool state is single-threaded;
            # the mutex serializes tenants sharing the spec — which is
            # exactly what makes the first tenant's run the second
            # tenant's memo hit instead of a duplicate dispatch.
            with self._member_lock:
                before = self._member.dispatched
                result = self._member.evaluate_many([params], on_error="return")[0]
                if isinstance(result, EvaluationFailure):
                    self.failures += 1
                elif self._member.dispatched > before:
                    self.tool_runs += 1
                else:
                    self.cache_hits += 1
                return result

        return run

    def evaluate_many(
        self, points: Sequence[Mapping[str, int]], on_error: str = "raise"
    ) -> list[Any]:
        return self.submit_many(points).results(on_error)

    @property
    def memo(self) -> dict[str, Any]:
        return self._member.memo

    @property
    def store_hits(self) -> int:
        return self._member.store_hits

    @property
    def memo_hits(self) -> int:
        return self._member.memo_hits

    @property
    def dispatched(self) -> int:
        return self._member.dispatched

    def tenant_stats(self) -> dict[str, int | float]:
        """This job's own economics over the shared member."""
        answered = self.tool_runs + self.cache_hits
        return {
            "tool_runs": self.tool_runs,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "cache_hit_rate": (self.cache_hits / answered) if answered else 0.0,
        }

    def close(self) -> None:
        """Detach only — the fleet owns the member's lifecycle."""
