"""The shared evaluator fleet and its per-job scheduler facade.

The server keeps one fleet member per distinct
:class:`~repro.core.parallel.EvaluatorSpec`.  Every job whose session
resolves to the same spec (same design source, part, step, directives,
period, seed, metrics) shares that member's cross-batch memo and
persistent-store binding, so the *first* tenant to evaluate a
configuration pays for it and every later tenant replays it as a cache
answer.

Members are :class:`_ConcurrentMember` evaluators built with
``workers=0``: each tool run executes inline on whichever scheduler pool
thread the request was dispatched to, with a thread-local tool evaluator
per pool thread.  Shared member state (memo, DRC gate, store handle,
counters) lives behind a short-critical-section ``_state_lock`` that is
*never* held across a tool run — so evaluations of distinct
configurations proceed in parallel up to the scheduler's capacity.
Identical configurations never race: the scheduler single-flights them
by evaluation cache key, turning N concurrent tenants on one point into
one executor slot plus N-1 coalesced answers.  (Earlier releases instead
serialized *every* evaluation sharing a spec behind one member mutex —
the per-spec lock convoy; that path survives as the coalescing-off
reference for benchmarks, and as the required mode for incremental
specs, whose results are order-dependent.)

:class:`SchedulerBoundEvaluator` is the facade a session binds via
``ApproximateFitness.set_batch_evaluator``: it exposes the same
``submit_many`` surface as ``ParallelPointEvaluator`` but routes each
point as one scheduler request tagged with the owning job, so the fair
round-robin interleaves *points*, not whole batches.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Mapping, Sequence

from repro.cache import FULL_RANK, point_key
from repro.core.parallel import (
    EvaluationFailure,
    EvaluatorSpec,
    ParallelPointEvaluator,
    RemoteEvaluationError,
    _as_cache_hit,
    _freeze,
)
from repro.errors import ReproError
from repro.observe import current_telemetry
from repro.serve.scheduler import FairScheduler

__all__ = ["EvaluatorFleet", "SchedulerBoundEvaluator", "ScheduledBatch"]


def _count(name: str, value: float = 1) -> None:
    tel = current_telemetry()
    if tel is not None:
        tel.counters.add(name, value)


class _ConcurrentMember(ParallelPointEvaluator):
    """A fleet member whose point evaluations may run on many threads.

    Inherits the whole memo/gate/store machinery of
    :class:`~repro.core.parallel.ParallelPointEvaluator`; what changes is
    the concurrency contract.  :meth:`evaluate_point` splits one
    evaluation into lock-held bookkeeping (memo lookup, DRC verdict,
    store consult, result commit) and the lock-free tool run in between,
    keyed to a thread-local tool evaluator, so distinct configurations
    evaluate in parallel while the shared state stays single-writer.

    Identical configurations must not race through the fresh path — the
    caller (the scheduler's single-flight table, keyed on exactly this
    member's memo key) guarantees at most one in-flight evaluation per
    key.  The inherited serial ``evaluate_many`` path remains available
    for callers that hold the member lock (the legacy convoy mode and
    incremental specs).
    """

    def __init__(self, spec: EvaluatorSpec, store: Any = None) -> None:
        super().__init__(spec=spec, workers=0, store=store)
        # Guards memo/counters/gate/identity caches and the store handle.
        # Held only for bookkeeping — never across a tool run or its
        # emulated latency sleep.
        self._state_lock = threading.Lock()
        self._tool_local = threading.local()

    def _tool_evaluator(self) -> Any:
        evaluator = getattr(self._tool_local, "evaluator", None)
        if evaluator is None:
            evaluator = self.spec.build()
            self._tool_local.evaluator = evaluator
        return evaluator

    def evaluate_point(
        self, params: dict[str, int]
    ) -> tuple[Any, str]:
        """Evaluate one configuration; returns ``(result, origin)``.

        ``origin`` says who answered: ``"memo"`` (cross-tenant replay,
        cache-priced), ``"store"`` (another process's run adopted from
        the persistent store), ``"drc"`` (pre-flight rejection), or
        ``"tool"`` (a fresh run this call paid for).
        """
        key = _freeze(params)
        tel = current_telemetry()
        with self._state_lock:
            stored = self.memo.get(key)
            if stored is not None:
                self.memo_hits += 1
                if tel is not None:
                    self._record_replay(tel, params, stored)
                if isinstance(stored, EvaluationFailure):
                    return (
                        dataclasses.replace(stored, simulated_seconds=0.0),
                        "memo",
                    )
                return _as_cache_hit(stored), "memo"
            violation = self.gate().violation(params)
            if violation is not None:
                failure = EvaluationFailure(
                    type(violation).__name__, str(violation)
                )
                self.memo[key] = failure
                self.drc_rejections += 1
                if tel is not None:
                    tel.ledger.append(
                        params=params,
                        outcome="drc",
                        charge=0.0,
                        error_type=type(violation).__name__,
                        origin="pool",
                    )
                return failure, "drc"
            identity = self._store_identity()
            if identity is not None:
                record = self.store.get(point_key(identity, params))
                if record is not None and record.rank >= FULL_RANK:
                    self._adopt_stored(key, params, record)
                    return self.memo[key], "store"
            self.dispatched += 1
        # The tool run happens outside the lock: parallelism across
        # distinct configurations is the whole point, and the emulated
        # tool latency must block only this pool thread.
        evaluator = self._tool_evaluator()
        try:
            result: Any = evaluator.evaluate(params)
        except ReproError as exc:
            result = EvaluationFailure(
                type(exc).__name__,
                str(exc),
                simulated_seconds=evaluator.last_failure_seconds,
            )
        if (
            self.spec.emulate_tool_latency > 0.0
            and result.simulated_seconds > 0.0
        ):
            time.sleep(
                result.simulated_seconds * self.spec.emulate_tool_latency
            )
        with self._state_lock:
            self.memo[key] = result
            self._store_put(params, result)
        return result, "tool"


class EvaluatorFleet:
    """One shared evaluator (plus legacy serial lock) per spec."""

    def __init__(
        self,
        store_root: str | None = None,
        shards: int = 8,
        single_flight: bool = True,
    ) -> None:
        self.store_root = store_root
        self.shards = shards
        #: When False every facade uses the legacy per-spec-lock convoy —
        #: the uncoalesced reference mode throughput benchmarks compare
        #: against.  Incremental specs use it regardless.
        self.single_flight = single_flight
        self._lock = threading.Lock()
        self._members: dict[EvaluatorSpec, _ConcurrentMember] = {}
        self._member_locks: dict[EvaluatorSpec, threading.Lock] = {}

    def _member(
        self, spec: EvaluatorSpec
    ) -> tuple[_ConcurrentMember, threading.Lock]:
        with self._lock:
            evaluator = self._members.get(spec)
            if evaluator is None:
                store = None
                if self.store_root is not None:
                    from repro.cache import open_store

                    # Each member opens its own handle on the shared
                    # (sharded) store: the handle's in-memory indexes are
                    # guarded by the member's state lock, while the
                    # on-disk flock keeps cross-handle appends
                    # first-writer-wins.
                    store = open_store(self.store_root, shards=self.shards)
                evaluator = _ConcurrentMember(spec, store=store)
                self._members[spec] = evaluator
                self._member_locks[spec] = threading.Lock()
            return evaluator, self._member_locks[spec]

    def bind(
        self, scheduler: FairScheduler, job_id: str, spec: EvaluatorSpec
    ) -> "SchedulerBoundEvaluator":
        """The facade a job's session plugs into its fitness."""
        evaluator, lock = self._member(spec)
        single_flight = self.single_flight and not spec.incremental
        return SchedulerBoundEvaluator(
            scheduler, job_id, evaluator, lock, single_flight=single_flight
        )

    def specs(self) -> list[EvaluatorSpec]:
        with self._lock:
            return list(self._members)

    def stats(self) -> dict[str, Any]:
        """Fleet-wide dedup accounting (summed over members)."""
        with self._lock:
            members = list(self._members.values())
        return {
            "members": len(members),
            "dispatched": sum(m.dispatched for m in members),
            "memo_hits": sum(m.memo_hits for m in members),
            "store_hits": sum(m.store_hits for m in members),
            "store_puts": sum(m.store_puts for m in members),
            "drc_rejections": sum(m.drc_rejections for m in members),
        }

    def close(self) -> None:
        with self._lock:
            members = list(self._members.values())
            self._members.clear()
            self._member_locks.clear()
        for member in members:
            member.close()


class ScheduledBatch:
    """Pending results of one ``submit_many`` through the scheduler.

    Duck-types the :class:`~repro.core.parallel.PendingBatch` surface the
    fitness layer consumes (``done()`` / ``results(on_error)``); results
    come back in request order regardless of scheduler interleaving.  A
    cancelled job's pending points surface as the
    :class:`~repro.serve.scheduler.JobCancelledError` their futures
    carry.
    """

    def __init__(self, futures: Sequence[Future[Any]]) -> None:
        self._futures = list(futures)

    def __len__(self) -> int:
        return len(self._futures)

    def done(self) -> bool:
        return all(f.done() for f in self._futures)

    def results(self, on_error: str = "raise") -> list[Any]:
        if on_error not in ("raise", "return"):
            raise ValueError(
                f"on_error must be 'raise' or 'return', got {on_error!r}"
            )
        out: list[Any] = []
        for future in self._futures:
            result = future.result()
            if on_error == "raise" and isinstance(result, EvaluationFailure):
                raise RemoteEvaluationError(result.original_type, result.message)
            out.append(result)
        return out


class SchedulerBoundEvaluator:
    """``ParallelPointEvaluator``-shaped facade over (scheduler, job, member).

    Owned by the server — ``close()`` here only detaches; the member
    evaluator and its memo live on for the next tenant.

    In single-flight mode (the default for non-incremental specs) each
    point is submitted under its evaluation cache key: concurrent
    duplicates across tenants coalesce onto one executor slot, and this
    tenant's copy of a run another lane paid for comes back cache-priced
    with a ``coalesced`` ledger origin.  With ``single_flight=False`` the
    facade reproduces the legacy convoy: every evaluation on the spec
    serializes behind the member lock.
    """

    def __init__(
        self,
        scheduler: FairScheduler,
        job_id: str,
        member: _ConcurrentMember,
        member_lock: threading.Lock,
        single_flight: bool = False,
    ) -> None:
        self.scheduler = scheduler
        self.job_id = job_id
        self.single_flight = single_flight
        self._member = member
        self._member_lock = member_lock
        # Per-tenant attribution (the member's own counters are shared
        # across every job on the spec): what *this* job's requests cost.
        # Bumped from executor threads and the scheduler loop thread.
        self._stats_lock = threading.Lock()
        self.tool_runs = 0
        self.cache_hits = 0
        self.failures = 0
        self.coalesced_hits = 0

    def submit_many(self, points: Sequence[Mapping[str, int]]) -> ScheduledBatch:
        """One scheduler request per point, fair-queued under this job."""
        futures: list[Future[Any]] = []
        for p in points:
            params = {k: int(v) for k, v in p.items()}
            if self.single_flight:
                futures.append(
                    self.scheduler.submit(
                        self.job_id,
                        self._one_concurrent(params),
                        key=(id(self._member), _freeze(params)),
                        transform=self._coalesced(params),
                    )
                )
            else:
                futures.append(
                    self.scheduler.submit(self.job_id, self._one(params))
                )
        return ScheduledBatch(futures)

    def _tally(self, result: Any, fresh: bool) -> None:
        with self._stats_lock:
            if isinstance(result, EvaluationFailure):
                self.failures += 1
            elif fresh:
                self.tool_runs += 1
            else:
                self.cache_hits += 1

    def _one_concurrent(self, params: dict[str, int]) -> Callable[[], Any]:
        def run() -> Any:
            result, origin = self._member.evaluate_point(params)
            self._tally(result, fresh=origin == "tool")
            return result

        return run

    def _coalesced(self, params: dict[str, int]) -> Callable[[Any], Any]:
        """The follower-side transform: another lane paid for this run.

        Prices the shared result exactly like a memo replay — a
        cache-sourced copy with zero new simulated seconds — and records
        a zero-charge ledger entry with the ``coalesced`` origin so
        traces show which answers the single-flight table produced.
        """

        def transform(result: Any) -> Any:
            with self._stats_lock:
                self.coalesced_hits += 1
                if isinstance(result, EvaluationFailure):
                    self.failures += 1
                else:
                    self.cache_hits += 1
            _count("serve.coalesced_hits")
            tel = current_telemetry()
            if tel is not None:
                if isinstance(result, EvaluationFailure):
                    drc = result.original_type == "DrcViolationError"
                    tel.ledger.append(
                        params=params,
                        outcome="drc" if drc else "failed",
                        charge=0.0,
                        error_type=result.original_type,
                        origin="coalesced",
                    )
                else:
                    tel.ledger.append(
                        params=params,
                        outcome="cache",
                        metrics=result.metrics,
                        charge=0.0,
                        origin="coalesced",
                    )
            if isinstance(result, EvaluationFailure):
                return dataclasses.replace(result, simulated_seconds=0.0)
            return _as_cache_hit(result)

        return transform

    def _one(self, params: dict[str, int]) -> Callable[[], Any]:
        def run() -> Any:
            # Legacy convoy mode: the member's memo/in-flight/tool state
            # is treated as single-threaded, so the mutex serializes
            # every tenant sharing the spec — the first tenant's run is
            # the second tenant's memo hit, one evaluation at a time.
            with self._member_lock:
                before = self._member.dispatched
                result = self._member.evaluate_many([params], on_error="return")[0]
                self._tally(result, fresh=self._member.dispatched > before)
                return result

        return run

    def evaluate_many(
        self, points: Sequence[Mapping[str, int]], on_error: str = "raise"
    ) -> list[Any]:
        return self.submit_many(points).results(on_error)

    @property
    def memo(self) -> dict[str, Any]:
        return self._member.memo

    @property
    def store_hits(self) -> int:
        return self._member.store_hits

    @property
    def memo_hits(self) -> int:
        return self._member.memo_hits

    @property
    def dispatched(self) -> int:
        return self._member.dispatched

    def tenant_stats(self) -> dict[str, int | float]:
        """This job's own economics over the shared member."""
        with self._stats_lock:
            tool_runs = self.tool_runs
            cache_hits = self.cache_hits
            failures = self.failures
            coalesced = self.coalesced_hits
        answered = tool_runs + cache_hits
        return {
            "tool_runs": tool_runs,
            "cache_hits": cache_hits,
            "coalesced_hits": coalesced,
            "failures": failures,
            "cache_hit_rate": (cache_hits / answered) if answered else 0.0,
        }

    def close(self) -> None:
        """Detach only — the fleet owns the member's lifecycle."""
