"""The DSE server: jobs in, Pareto fronts out, one shared fleet.

:class:`DseServer` is the long-running process behind ``dovado-repro
serve``.  Its root directory is the whole service contract::

    <root>/queue/      # FileJobQueue (clients submit/cancel here)
    <root>/store/      # the shared sharded ResultStore (all tenants)
    <root>/results/    # <job-id>/dse.json per finished job
    <root>/STOP        # touch to request a graceful drain + exit

The serve loop claims queued jobs under an admission controller
(:mod:`repro.serve.admission`): ``fixed`` mode is the classic stagger —
one claim per poll tick, so an earlier tenant's evaluations are already
memo assets when an overlapping tenant arrives — while ``adaptive`` mode
runs an AIMD claim budget over fleet utilization and the warm-hit ratio
*and* switches the loop from polling to event-driven claiming: a queue
submit wakes the loop immediately (in-process listener plus the queue's
``SUBMIT`` stamp for cross-process submitters), so admission latency is
bounded by a file touch instead of half a poll tick.

Each claimed job is registered with the
:class:`~repro.serve.scheduler.FairScheduler` and its session runs on a
job-runner thread.  The session itself is the stock
:class:`~repro.core.session.DseSession`; the only serve-specific wiring
is ``fitness.set_batch_evaluator`` binding it to the shared fleet, so
every tool dispatch flows through the fair scheduler and the shared
store.  Fronts are therefore byte-identical to the same session run
standalone — the service changes *who pays* for each tool run, never
the answers.

Cancellation: the queue's ``.cancel`` marker is polled each tick and
translated into ``scheduler.cancel_job`` — queued evaluations fail fast
with :class:`~repro.serve.scheduler.JobCancelledError`, which unwinds
that session's explore loop; in-flight runs finish and stay in the
store.  Shutdown (``STOP`` file, ``stop()``, or ``max_idle_s``) stops
claiming, drains the scheduler, and joins every runner.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import traceback
from pathlib import Path
from typing import Any

from repro.observe import current_telemetry
from repro.serve.admission import (
    AdaptiveAdmission,
    AdmissionSignals,
    FixedAdmission,
    make_admission,
)
from repro.serve.fleet import EvaluatorFleet, SchedulerBoundEvaluator
from repro.serve.jobs import JobRecord, JobState
from repro.serve.queue import (
    FileJobQueue,
    add_submit_listener,
    remove_submit_listener,
)
from repro.serve.scheduler import FairScheduler, JobCancelledError

__all__ = ["DseServer"]

#: What the controller sees when it declared it doesn't read signals
#: (fixed mode) — saves a scheduler/fleet stats round-trip per tick.
_NO_SIGNALS = AdmissionSignals(
    utilization=0.0, warm_hits=0, fresh_runs=0, queue_depth=0
)


def _count(name: str, value: float = 1) -> None:
    tel = current_telemetry()
    if tel is not None:
        tel.counters.add(name, value)


class DseServer:
    """Multiplex queued DSE jobs over one scheduler + fleet + store."""

    def __init__(
        self,
        root: str | Path,
        capacity: int = 4,
        shards: int = 8,
        slots_per_job: int = 2,
        max_pending: int | None = None,
        poll_interval_s: float = 0.05,
        admission: str | FixedAdmission | AdaptiveAdmission = "fixed",
        coalesce: bool = True,
        emulate_tool_latency: float = 0.0,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.queue = FileJobQueue(self.root / "queue")
        self.results_dir = self.root / "results"
        self.results_dir.mkdir(exist_ok=True)
        self.store_root = self.root / "store"
        self.shards = shards
        self.slots_per_job = slots_per_job
        self.poll_interval_s = poll_interval_s
        if isinstance(admission, str):
            admission = make_admission(admission, poll_interval_s)
        self.admission = admission
        self.coalesce = coalesce
        #: Real seconds slept per simulated tool second on fresh runs —
        #: the serve-throughput benchmark's stand-in for external tool
        #: latency.  0 (the default) disables it.
        self.emulate_tool_latency = emulate_tool_latency
        self.scheduler = FairScheduler(
            capacity=capacity,
            max_pending=max_pending if max_pending is not None else 4 * capacity,
        )
        self.fleet = EvaluatorFleet(
            store_root=str(self.store_root),
            shards=shards,
            single_flight=coalesce,
        )
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0
        # Terminal-state counters are bumped on job-runner threads and read
        # by the serve loop / stats(): the lock keeps both sides atomic.
        self._counters_lock = threading.Lock()
        self._runners: dict[str, threading.Thread] = {}
        self._stop = threading.Event()
        # The claim-loop wake event: submit listeners (adaptive mode) and
        # stop() set it so the loop reacts immediately instead of riding
        # out the heartbeat wait.
        self._wake = threading.Event()
        self._last_warm_hits = 0
        self._last_fresh_runs = 0
        self._final_fleet_stats: dict[str, Any] | None = None
        self._final_coalesced: int | None = None

    # -- lifecycle --------------------------------------------------------

    @property
    def _stop_file(self) -> Path:
        return self.root / "STOP"

    def stop(self) -> None:
        """Request a graceful drain from another thread."""
        self._stop.set()
        self._wake.set()

    def _should_stop(self) -> bool:
        return self._stop.is_set() or self._stop_file.exists()

    def _finished_jobs(self) -> int:
        with self._counters_lock:
            return self.jobs_done + self.jobs_failed + self.jobs_cancelled

    def _signals(self) -> AdmissionSignals:
        load = self.scheduler.load()
        fleet = self.fleet.stats()
        warm = (
            int(fleet["memo_hits"])
            + int(fleet["store_hits"])
            + int(load["coalesced_hits"])
        )
        fresh = int(fleet["dispatched"])
        capacity = int(load["capacity"])
        signals = AdmissionSignals(
            utilization=(int(load["in_flight"]) / capacity) if capacity else 0.0,
            warm_hits=max(0, warm - self._last_warm_hits),
            fresh_runs=max(0, fresh - self._last_fresh_runs),
            queue_depth=self.queue.last_scan_entries,
        )
        self._last_warm_hits = warm
        self._last_fresh_runs = fresh
        return signals

    def serve_forever(
        self,
        max_idle_s: float | None = None,
        stop_after: int | None = None,
    ) -> dict[str, Any]:
        """The serve loop; returns a final stats snapshot after draining.

        ``max_idle_s`` exits once the queue has been empty (and no job
        running) for that long; ``stop_after`` exits once that many jobs
        reached a terminal state.  Both are for tests/smoke runs — a real
        service runs with neither and drains on ``STOP``.
        """
        idle_since: float | None = None
        event_driven = self.admission.event_driven
        listener = self._wake.set if event_driven else None
        if listener is not None:
            add_submit_listener(self.queue.root, listener)
        last_stamp = self.queue.submit_stamp_ns()
        try:
            while not self._should_stop():
                self._reap_runners()
                self._poll_cancels()
                if (
                    stop_after is not None
                    and self._finished_jobs() >= stop_after
                ):
                    break
                decision = self.admission.decide(
                    self._signals() if event_driven else _NO_SIGNALS
                )
                # Clear before the scan: a submit landing after the scan
                # re-sets the event and the wait below returns at once —
                # the claim is never lost, only deferred one pass.
                self._wake.clear()
                claimed = self.queue.claim_many(decision.claims)
                for record in claimed:
                    self._launch(record)
                if claimed:
                    idle_since = None
                elif not self._runners:
                    if max_idle_s is not None:
                        now = time.monotonic()
                        if idle_since is None:
                            idle_since = now
                        elif now - idle_since >= max_idle_s:
                            break
                if event_driven:
                    # Cross-process submitters can't fire the in-process
                    # listener; their SUBMIT stamp bump skips the wait.
                    stamp = self.queue.submit_stamp_ns()
                    if stamp != last_stamp:
                        last_stamp = stamp
                        continue
                    self._wake.wait(decision.wait_s)
                else:
                    # Fixed mode: the classic stagger, verbatim — one
                    # claim per tick, waiting on the stop event so
                    # stop() still wakes the loop immediately.
                    self._stop.wait(decision.wait_s)
        finally:
            if listener is not None:
                remove_submit_listener(self.queue.root, listener)
            self._drain()
        return self.stats()

    def _drain(self) -> None:
        # Graceful: nothing new is claimed past this point, but running
        # jobs keep submitting until their sessions finish — drain means
        # "no session abandoned mid-batch", not "fail fast".  The
        # scheduler (trivially idle by then) and fleet close after.
        for thread in list(self._runners.values()):
            thread.join()
        self._reap_runners()
        self._final_fleet_stats = self.fleet.stats()
        self._final_coalesced = int(self.scheduler.load()["coalesced_hits"])
        self.scheduler.close()
        self.fleet.close()

    # -- job execution ----------------------------------------------------

    def _reap_runners(self) -> None:
        for job_id in [j for j, t in self._runners.items() if not t.is_alive()]:
            self._runners.pop(job_id).join()

    def _poll_cancels(self) -> None:
        for job_id in list(self._runners):
            if self.queue.cancel_requested(job_id):
                dropped = self.scheduler.cancel_job(job_id)
                if dropped:
                    _count("serve.requests_dropped", dropped)

    def _launch(self, record: JobRecord) -> None:
        self.scheduler.register_job(record.job_id, slots=self.slots_per_job)
        _count("serve.jobs_claimed")
        thread = threading.Thread(
            target=self._run_job,
            args=(record,),
            name=f"job-{record.job_id}",
            daemon=True,
        )
        self._runners[record.job_id] = thread
        thread.start()

    def _build_session(self, record: JobRecord) -> Any:
        from repro.core.session import DseSession
        from repro.designs import get_design

        spec = record.spec
        return DseSession(
            get_design(spec.design),
            part=spec.part,
            target_period_ns=spec.target_period_ns,
            use_model=spec.use_model,
            pretrain_size=spec.pretrain,
            seed=spec.seed,
        )

    def _run_job(self, record: JobRecord) -> None:
        job_id = record.job_id
        bound: SchedulerBoundEvaluator | None = None
        try:
            session = self._build_session(record)
            from repro.core.parallel import EvaluatorSpec

            spec = EvaluatorSpec.from_evaluator(
                session.evaluator, design_name=record.spec.design
            )
            if self.emulate_tool_latency > 0.0:
                spec = dataclasses.replace(
                    spec, emulate_tool_latency=self.emulate_tool_latency
                )
            bound = self.fleet.bind(self.scheduler, job_id, spec)
            session.fitness.set_batch_evaluator(bound)
            result = session.explore(
                generations=record.spec.generations,
                population=record.spec.population,
                soft_deadline_s=record.spec.soft_deadline_s,
                pretrain=record.spec.pretrain > 0,
                algorithm=record.spec.algorithm,
            )
            out_dir = self.results_dir / job_id
            out_dir.mkdir(parents=True, exist_ok=True)
            result_path = result.save(out_dir)
            session.close()
            self.queue.finish(
                job_id,
                JobState.DONE,
                result_path=str(result_path),
                stats={
                    "front_size": len(result.pareto),
                    "evaluations": result.evaluations,
                    "tool_runs": result.tool_runs,
                    "simulated_seconds": result.simulated_seconds,
                    **bound.tenant_stats(),
                },
            )
            with self._counters_lock:
                self.jobs_done += 1
            _count("serve.jobs_done")
        except JobCancelledError:
            self.queue.finish(
                job_id,
                JobState.CANCELLED,
                stats=bound.tenant_stats() if bound is not None else {},
            )
            with self._counters_lock:
                self.jobs_cancelled += 1
            _count("serve.jobs_cancelled")
        except Exception as exc:  # noqa: BLE001 - one job must not kill the server
            self.queue.finish(
                job_id,
                JobState.FAILED,
                error=f"{type(exc).__name__}: {exc}",
                stats=bound.tenant_stats() if bound is not None else {},
            )
            with self._counters_lock:
                self.jobs_failed += 1
            _count("serve.jobs_failed")
            traceback.print_exc()
        finally:
            self.scheduler.unregister_job(job_id)
            # A finished job frees capacity (and may satisfy stop_after):
            # wake the claim loop so it re-decides now, not next heartbeat.
            self._wake.set()

    # -- introspection ----------------------------------------------------

    def stats(self) -> dict[str, Any]:
        with self._counters_lock:
            done = self.jobs_done
            failed = self.jobs_failed
            cancelled = self.jobs_cancelled
        if self._final_coalesced is not None:
            coalesced = self._final_coalesced
        else:
            coalesced = int(self.scheduler.load()["coalesced_hits"])
        return {
            "jobs_done": done,
            "jobs_failed": failed,
            "jobs_cancelled": cancelled,
            "queue_depth": self.queue.depth(),
            "coalesced_hits": coalesced,
            "admission": self.admission.stats(),
            "fleet": self._final_fleet_stats or self.fleet.stats(),
        }
