"""Simulated-annealing block placement.

Blocks are placed by center coordinate on the device's site grid.  The cost
function is weighted half-perimeter wirelength (Manhattan distance between
connected block centers, weighted by net width) plus a quadratic overlap
penalty keeping footprints apart.  Moves jitter one block's center within a
temperature-scaled radius; the schedule is geometric.  Everything is seeded,
so a placement is a deterministic function of (design, device, effort,
seed) — the property result caching relies on.

Capacity legality (resource overflow, including the pin-overflow case the
boxing step exists to avoid) is checked here, where Vivado reports it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.devices import ResourceKind
from repro.errors import PlacementError, UtilizationOverflowError
from repro.synth.mapper import MappedDesign
from repro.util.rng import as_generator

__all__ = ["Placement", "place"]

# Kinds whose capacity placement enforces.
_CHECKED_KINDS = (
    ResourceKind.LUT,
    ResourceKind.FF,
    ResourceKind.BRAM,
    ResourceKind.DSP,
    ResourceKind.IO,
    ResourceKind.BUFG,
)


@dataclass
class Placement:
    """Placed block centers plus bookkeeping for routing and checkpoints."""

    coords: dict[str, tuple[float, float]]
    cost: float
    iterations: int
    seeded_from_checkpoint: bool = False

    def distance(self, a: str, b: str) -> float:
        ax, ay = self.coords[a]
        bx, by = self.coords[b]
        return abs(ax - bx) + abs(ay - by)

    def spread(self) -> float:
        """Bounding-box half-perimeter of the whole placement (grid units)."""
        if not self.coords:
            return 0.0
        xs = [c[0] for c in self.coords.values()]
        ys = [c[1] for c in self.coords.values()]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))


def _check_capacity(design: MappedDesign) -> None:
    for kind in _CHECKED_KINDS:
        required = design.total.get(kind)
        available = design.device.capacity(kind)
        if required > available:
            raise UtilizationOverflowError(str(kind), required, available)


def _net_weight(width: int) -> float:
    return 1.0 + np.log2(width) / 4.0 if width > 1 else 1.0


def place(
    design: MappedDesign,
    effort: float = 1.0,
    seed: int | np.random.Generator | None = 0,
    initial: dict[str, tuple[float, float]] | None = None,
) -> Placement:
    """Place ``design`` on its device grid.

    ``initial`` warm-starts annealing from a checkpointed placement (the
    incremental flow); warm starts take a shortened schedule.
    """
    _check_capacity(design)
    rng = as_generator(seed)
    device = design.device
    netlist = design.netlist
    names = [b.name for b in netlist.blocks()]
    n = len(names)
    if n == 0:
        raise PlacementError("cannot place an empty netlist")
    index = {name: i for i, name in enumerate(names)}

    cols, rows = device.grid_cols, device.grid_rows
    sides = np.array(
        [max(1.0, float(design.block_sites(name)) ** 0.5) for name in names]
    )

    # Initial placement: checkpoint coordinates where available, otherwise a
    # row-major strip ordered by connectivity (netlist insertion order is
    # already roughly dataflow order).
    xy = np.empty((n, 2), dtype=np.float64)
    strip_x, strip_y = 2.0, 2.0
    for i, name in enumerate(names):
        if initial is not None and name in initial:
            xy[i] = initial[name]
            continue
        xy[i] = (strip_x, strip_y)
        strip_x += sides[i] + 1.0
        if strip_x > cols - 2:
            strip_x = 2.0
            strip_y += float(sides.max()) + 1.0
            if strip_y > rows - 2:
                strip_y = 2.0
    np.clip(xy[:, 0], 1.0, cols - 1.0, out=xy[:, 0])
    np.clip(xy[:, 1], 1.0, rows - 1.0, out=xy[:, 1])

    nets = netlist.nets()
    if nets:
        src = np.array([index[net.src] for net in nets])
        dst = np.array([index[net.dst] for net in nets])
        weights = np.array([_net_weight(net.width) for net in nets])
    else:
        src = dst = np.zeros(0, dtype=int)
        weights = np.zeros(0)

    # Incident-net index lists for delta-cost evaluation.
    incident: list[np.ndarray] = []
    for i in range(n):
        mask = (src == i) | (dst == i)
        incident.append(np.nonzero(mask)[0])

    min_sep = (sides[:, None] + sides[None, :]) / 2.0

    def wirelength(positions: np.ndarray) -> float:
        if src.size == 0:
            return 0.0
        d = np.abs(positions[src] - positions[dst]).sum(axis=1)
        return float((weights * d).sum())

    def overlap_penalty(positions: np.ndarray) -> float:
        if n < 2:
            return 0.0
        dx = np.abs(positions[:, 0, None] - positions[None, :, 0])
        dy = np.abs(positions[:, 1, None] - positions[None, :, 1])
        ox = np.maximum(0.0, min_sep - dx)
        oy = np.maximum(0.0, min_sep - dy)
        overlap = ox * oy
        np.fill_diagonal(overlap, 0.0)
        return float(overlap.sum()) / 2.0

    def cost(positions: np.ndarray) -> float:
        return wirelength(positions) + 2.5 * overlap_penalty(positions)

    def local_cost(i: int) -> float:
        """Cost terms involving block ``i`` only (for delta evaluation)."""
        total = 0.0
        idx = incident[i]
        if idx.size:
            d = np.abs(xy[src[idx]] - xy[dst[idx]]).sum(axis=1)
            total += float((weights[idx] * d).sum())
        if n > 1:
            dx = np.abs(xy[:, 0] - xy[i, 0])
            dy = np.abs(xy[:, 1] - xy[i, 1])
            ox = np.maximum(0.0, min_sep[i] - dx)
            oy = np.maximum(0.0, min_sep[i] - dy)
            ov = ox * oy
            ov[i] = 0.0
            total += 2.5 * float(ov.sum())
        return total

    warm = initial is not None
    schedule_scale = 0.35 if warm else 1.0
    iters = max(40, int(effort * schedule_scale * 60 * n))
    current_cost = cost(xy)
    temperature = max(1.0, current_cost / max(1, n)) * (0.25 if warm else 1.0)
    cooling = 0.985 if iters > 200 else 0.97
    radius = (max(cols, rows) / 4.0) * (0.3 if warm else 1.0)

    # Pre-draw random streams for the whole schedule (cheaper than per-step).
    block_picks = rng.integers(0, n, size=iters)
    jitters = rng.normal(0.0, 1.0, size=(iters, 2))
    accepts = rng.random(size=iters)

    for step in range(iters):
        i = int(block_picks[step])
        old = xy[i].copy()
        before = local_cost(i)
        sigma = max(0.8, radius)
        xy[i, 0] = float(np.clip(old[0] + jitters[step, 0] * sigma, 1.0, cols - 1.0))
        xy[i, 1] = float(np.clip(old[1] + jitters[step, 1] * sigma, 1.0, rows - 1.0))
        delta = local_cost(i) - before
        if delta <= 0 or accepts[step] < np.exp(-delta / max(temperature, 1e-9)):
            current_cost += delta
        else:
            xy[i] = old
        temperature *= cooling
        radius = max(1.0, radius * cooling)
    current_cost = cost(xy)  # re-synchronize against accumulated float drift

    coords = {name: (float(xy[i, 0]), float(xy[i, 1])) for name, i in index.items()}
    return Placement(
        coords=coords,
        cost=current_cost,
        iterations=iters,
        seeded_from_checkpoint=warm,
    )
