"""Incremental-flow checkpoints.

Vivado's incremental design flow "writes some archives, called checkpoints"
per run and reuses them so re-runs skip work on unchanged design parts.
VEDA's checkpoint captures the placed coordinates keyed by the netlist's
*structure* fingerprint: a re-parameterized design with the same block/net
topology warm-starts placement from the stored coordinates, shortening both
the annealing schedule and the simulated wall clock in proportion to the
unchanged-cell fraction.

:class:`CheckpointStore` is an LRU-bounded in-memory archive with optional
JSON persistence, mirroring the on-disk ``.dcp`` files of the real flow.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CheckpointError
from repro.netlist import Netlist
from repro.pnr.placer import Placement

__all__ = ["Checkpoint", "CheckpointStore"]


@dataclass(frozen=True)
class Checkpoint:
    """One stored placement."""

    structure_fingerprint: int
    content_fingerprint: int
    coords: dict[str, tuple[float, float]]
    block_summary: dict[str, int]  # name -> approximate cells (for reporting)

    @classmethod
    def from_run(cls, netlist: Netlist, placement: Placement) -> "Checkpoint":
        return cls(
            structure_fingerprint=netlist.structure_fingerprint(),
            content_fingerprint=netlist.content_fingerprint(),
            coords=dict(placement.coords),
            block_summary={
                b.name: b.approximate_cells() for b in netlist.blocks()
            },
        )

    def matches_structure(self, netlist: Netlist) -> bool:
        return self.structure_fingerprint == netlist.structure_fingerprint()

    def matches_content(self, netlist: Netlist) -> bool:
        return self.content_fingerprint == netlist.content_fingerprint()


class CheckpointStore:
    """LRU archive of checkpoints keyed by structure fingerprint."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._store: OrderedDict[int, Checkpoint] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def save(self, checkpoint: Checkpoint) -> None:
        key = checkpoint.structure_fingerprint
        if key in self._store:
            self._store.pop(key)
        self._store[key] = checkpoint
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def lookup(self, netlist: Netlist) -> Checkpoint | None:
        """Find a structurally matching checkpoint (LRU-refreshing)."""
        key = netlist.structure_fingerprint()
        ckpt = self._store.get(key)
        if ckpt is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return ckpt

    # -- persistence ---------------------------------------------------------

    def write(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = [
            {
                "structure_fingerprint": c.structure_fingerprint,
                "content_fingerprint": c.content_fingerprint,
                "coords": {k: list(v) for k, v in c.coords.items()},
                "block_summary": c.block_summary,
            }
            for c in self._store.values()
        ]
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, path: str | Path, capacity: int = 64) -> "CheckpointStore":
        store = cls(capacity=capacity)
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint archive {path}: {exc}") from exc
        if not isinstance(payload, list):
            raise CheckpointError(f"malformed checkpoint archive {path}")
        for entry in payload:
            try:
                store.save(
                    Checkpoint(
                        structure_fingerprint=int(entry["structure_fingerprint"]),
                        content_fingerprint=int(entry["content_fingerprint"]),
                        coords={
                            k: (float(v[0]), float(v[1]))
                            for k, v in entry["coords"].items()
                        },
                        block_summary={
                            k: int(v) for k, v in entry["block_summary"].items()
                        },
                    )
                )
            except (KeyError, TypeError, ValueError, IndexError) as exc:
                raise CheckpointError(
                    f"malformed checkpoint entry in {path}: {exc}"
                ) from exc
        return store
