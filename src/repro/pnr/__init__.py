"""Simulated implementation: placement, routing, static timing, checkpoints.

The implementation half of VEDA.  Placement runs a seeded simulated
annealer over block centers on the device grid; routing converts placed
distances plus device fill into per-net delays with congestion-aware
detours; STA enumerates register-to-register arcs and computes worst
negative slack against the target period; checkpoints capture placements so
the incremental flow (paper Section III-B2) can warm-start subsequent runs.
"""

from repro.pnr.placer import Placement, place
from repro.pnr.router import RoutingResult, route
from repro.pnr.timing import TimingResult, analyze_timing
from repro.pnr.checkpoints import Checkpoint, CheckpointStore
from repro.pnr.implementation import ImplementationResult, implement

__all__ = [
    "Placement",
    "place",
    "RoutingResult",
    "route",
    "TimingResult",
    "analyze_timing",
    "Checkpoint",
    "CheckpointStore",
    "ImplementationResult",
    "implement",
]
