"""Implementation flow driver: place → route → STA, with runtime model.

Mirrors :mod:`repro.synth.synthesis` for the implementation step, including
the incremental flow: with a checkpoint whose structure matches, placement
warm-starts from the stored coordinates and the simulated runtime shrinks
toward the incremental floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.directives import ImplDirective
from repro.pnr.checkpoints import Checkpoint, CheckpointStore
from repro.pnr.placer import Placement, place
from repro.pnr.router import RoutingResult, route
from repro.pnr.timing import TimingResult, analyze_timing
from repro.synth.mapper import MappedDesign

__all__ = [
    "ImplementationResult",
    "implement",
    "implement_placed_estimate",
    "estimate_impl_seconds",
    "estimate_placed_seconds",
]

_IMPL_BASE_S = 65.0
_IMPL_PER_CELL_S = 0.035
_INCREMENTAL_FLOOR = 0.35
#: Fraction of the implementation runtime spent by the time placement (and
#: the post-place timing estimate) completes — the cost of the
#: ``placed-estimate`` fidelity relative to the full place+route+STA step.
_PLACE_FRACTION = 0.45


def estimate_impl_seconds(
    cells: int, directive: ImplDirective, reuse_fraction: float = 0.0
) -> float:
    """Simulated implementation wall time (place+route+STA)."""
    if not 0.0 <= reuse_fraction <= 1.0:
        raise ValueError(f"reuse_fraction out of range: {reuse_fraction}")
    effect = directive.effect()
    full = (_IMPL_BASE_S + cells * _IMPL_PER_CELL_S) * effect.runtime_factor
    saved = reuse_fraction * (1.0 - _INCREMENTAL_FLOOR)
    return full * (1.0 - saved)


def estimate_placed_seconds(cells: int, directive: ImplDirective) -> float:
    """Simulated wall time of the placed-estimate fidelity (place + est. STA)."""
    return estimate_impl_seconds(cells, directive) * _PLACE_FRACTION


@dataclass
class ImplementationResult:
    placement: Placement
    routing: RoutingResult
    timing: TimingResult
    directive: ImplDirective
    simulated_seconds: float
    used_checkpoint: bool
    checkpoint: Checkpoint


def implement(
    design: MappedDesign,
    target_period_ns: float,
    directive: ImplDirective = ImplDirective.DEFAULT,
    seed: int | np.random.Generator | None = 0,
    checkpoints: CheckpointStore | None = None,
    extra_delay_bias: float = 1.0,
) -> ImplementationResult:
    """Run placement, routing, and STA for ``design``.

    ``extra_delay_bias`` carries the synthesis directive's delay bias into
    the final numbers (synthesis QoR propagates through implementation).
    """
    effect = directive.effect()
    initial = None
    reuse = 0.0
    if checkpoints is not None:
        ckpt = checkpoints.lookup(design.netlist)
        if ckpt is not None:
            initial = ckpt.coords
            # Savings scale with how much of the design those coordinates
            # still describe (block sizes may have shifted under new params).
            summary_cells = sum(ckpt.block_summary.values()) or 1
            current_cells = design.netlist.approximate_cells() or 1
            size_ratio = min(summary_cells, current_cells) / max(
                summary_cells, current_cells
            )
            reuse = 0.9 * size_ratio

    placement = place(design, effort=effect.effort, seed=seed, initial=initial)
    routing = route(design, placement)
    timing = analyze_timing(
        design.netlist,
        design.device,
        routing,
        target_period_ns=target_period_ns,
        delay_bias=effect.delay_bias * extra_delay_bias,
    )
    seconds = estimate_impl_seconds(
        design.netlist.approximate_cells(), directive, reuse_fraction=reuse
    )
    checkpoint = Checkpoint.from_run(design.netlist, placement)
    if checkpoints is not None:
        checkpoints.save(checkpoint)
    return ImplementationResult(
        placement=placement,
        routing=routing,
        timing=timing,
        directive=directive,
        simulated_seconds=seconds,
        used_checkpoint=initial is not None,
        checkpoint=checkpoint,
    )


def implement_placed_estimate(
    design: MappedDesign,
    target_period_ns: float,
    directive: ImplDirective = ImplDirective.DEFAULT,
    seed: int | np.random.Generator | None = 0,
    extra_delay_bias: float = 1.0,
) -> ImplementationResult:
    """Place ``design`` and estimate timing *before* routing.

    The placed-estimate fidelity of the flow ladder: placement runs for
    real, but the router is consulted in optimistic mode (Manhattan
    distances, no congestion detour), the way post-place timing estimates
    read in Vivado.  Charges :func:`estimate_placed_seconds` instead of the
    full implementation runtime; never consults or produces incremental
    checkpoints (a speculative probe must not perturb the full flow).
    """
    effect = directive.effect()
    placement = place(design, effort=effect.effort, seed=seed, initial=None)
    routing = route(design, placement, optimistic=True)
    timing = analyze_timing(
        design.netlist,
        design.device,
        routing,
        target_period_ns=target_period_ns,
        delay_bias=effect.delay_bias * extra_delay_bias,
    )
    seconds = estimate_placed_seconds(design.netlist.approximate_cells(), directive)
    return ImplementationResult(
        placement=placement,
        routing=routing,
        timing=timing,
        directive=directive,
        simulated_seconds=seconds,
        used_checkpoint=False,
        checkpoint=Checkpoint.from_run(design.netlist, placement),
    )
