"""Static timing analysis over the block netlist.

Path delay composition for one register-to-register arc::

    clk-to-Q  +  Σ block internal delay  +  Σ routed net delay  +  setup

Block internal delay is ``levels`` LUT stages (each a LUT plus a local
route), the widest carry chain, and the BRAM/DSP access delay when the
block's critical path traverses one.  All delays scale with the device's
speed factor and the run's directive delay bias.

WNS follows the Vivado sign convention the paper's Eq. (1) uses: positive
slack when timing closes with margin, negative when the constraint is
violated: ``WNS = T_target - critical_delay``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices import Device
from repro.errors import TimingAnalysisError
from repro.netlist import Block, Netlist, graph as ngraph
from repro.pnr.router import RoutingResult

__all__ = ["TimingResult", "analyze_timing", "block_internal_delay_ns"]

# Local route charged per LUT stage, as a fraction of the nominal net delay.
_LOCAL_ROUTE_FRACTION = 0.55
# Longest carry chain modeled per block (wider adders get split/retimed).
_MAX_CARRY_CHAIN = 64


def block_internal_delay_ns(block: Block, device: Device) -> float:
    """Delay through one block's internal critical path (ns, pre-bias)."""
    t = device.timing()
    stage = t.lut_delay_ns + _LOCAL_ROUTE_FRACTION * t.net_delay_ns
    delay = block.levels * stage
    if block.carry_bits:
        delay += min(block.carry_bits, _MAX_CARRY_CHAIN) * t.carry_delay_ns
    if block.through_memory:
        delay += t.bram_access_ns
    if block.through_dsp:
        delay += t.dsp_delay_ns
    return delay * device.speed_factor


@dataclass
class TimingResult:
    """STA output: WNS plus the critical path's identity."""

    target_period_ns: float
    critical_delay_ns: float
    wns_ns: float
    critical_path: tuple[str, ...]
    arcs_analyzed: int

    def met(self) -> bool:
        return self.wns_ns >= 0.0

    def achievable_period_ns(self) -> float:
        return self.critical_delay_ns


def analyze_timing(
    netlist: Netlist,
    device: Device,
    routing: RoutingResult,
    target_period_ns: float,
    delay_bias: float = 1.0,
) -> TimingResult:
    """Analyze all register-to-register arcs; returns the worst one.

    Raises :class:`TimingAnalysisError` when the netlist exposes no arcs
    (a purely combinational design has no register-to-register constraint
    to analyze — the box's registered boundary prevents this in practice).
    """
    if target_period_ns <= 0:
        raise TimingAnalysisError(f"non-positive target period {target_period_ns}")
    arcs = netlist.timing_arcs()
    if not arcs:
        raise TimingAnalysisError("no register-to-register timing arcs found")

    t = device.timing()
    overhead = (t.ff_clk_to_q_ns + t.ff_setup_ns) * device.speed_factor

    # Internal delays are reused across arcs; precompute per block.
    internal = {
        b.name: block_internal_delay_ns(b, device) for b in netlist.blocks()
    }

    worst_delay = 0.0
    worst_path: tuple[str, ...] = (arcs[0].blocks[0],)
    for arc in arcs:
        blocks = arc.blocks
        # A launch block that registers its outputs contributes only its
        # clock-to-Q (already in `overhead`): its internal logic sits before
        # the launch register and was covered by its own single-block arc.
        launch = blocks[0]
        launch_registered = netlist.block(launch).registered_output and len(blocks) > 1
        delay = overhead
        for i, name in enumerate(blocks):
            if i == 0 and launch_registered:
                continue
            delay += internal[name]
        for a, b in zip(blocks, blocks[1:]):
            delay += routing.delay(a, b)
        if delay > worst_delay:
            worst_delay = delay
            worst_path = blocks

    worst_delay *= delay_bias
    return TimingResult(
        target_period_ns=target_period_ns,
        critical_delay_ns=worst_delay,
        wns_ns=target_period_ns - worst_delay,
        critical_path=worst_path,
        arcs_analyzed=len(arcs),
    )
