"""Congestion-aware routing estimation.

Given a placement, each net's routed length is its Manhattan distance plus a
congestion-dependent detour.  Congestion is modeled at the device level:
track demand is the width-weighted total routed length, track supply scales
with the grid area, and the device-fill fraction adds pressure through the
process model's congestion exponent (denser fills route superlinearly
worse).  The result carries per-net routed delays consumed by STA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.netlist import Net
from repro.pnr.placer import Placement
from repro.synth.mapper import MappedDesign

__all__ = ["RoutingResult", "route"]

_TRACKS_PER_TILE = 18.0       # usable general-route tracks per grid tile
_MIN_NET_DELAY_FRACTION = 0.35  # short nets still pay fanout + entry delay
_DETOUR_GAIN = 0.8


@dataclass
class RoutingResult:
    """Routed net delays and the congestion summary."""

    net_delays_ns: dict[tuple[str, str], float]
    congestion: float          # demand / supply, >1 means contended routing
    detour_factor: float       # multiplier applied to Manhattan lengths
    total_wirelength: float

    def delay(self, src: str, dst: str) -> float:
        return self.net_delays_ns[(src, dst)]


def route(
    design: MappedDesign, placement: Placement, optimistic: bool = False
) -> RoutingResult:
    """Estimate routing for ``design`` under ``placement``.

    ``optimistic=True`` is the placed-estimate fidelity: net delays are
    computed from the placement's Manhattan distances with *no* congestion
    detour (``detour_factor == 1.0``), the way a post-place timing
    estimate reads before the router has resolved track contention.  The
    congestion summary is still computed and reported so callers can use
    it as a promotion signal.
    """
    device = design.device
    timing = device.timing()
    nets = design.netlist.nets()

    if nets:
        dists = np.array([placement.distance(n.src, n.dst) for n in nets])
        widths = np.array([float(n.width) for n in nets])
    else:
        dists = np.zeros(0)
        widths = np.zeros(0)

    demand = float((widths * np.maximum(dists, 1.0)).sum())
    supply = device.grid_cols * device.grid_rows * _TRACKS_PER_TILE
    congestion = demand / supply if supply else 0.0

    fill = design.utilization_fraction()
    pressure = congestion + fill ** timing.congestion_exponent
    detour = 1.0 if optimistic else 1.0 + _DETOUR_GAIN * max(0.0, pressure)

    # Per-net delay: a floor (local fanout/entry) plus distance-proportional
    # track delay; wide buses load the drivers slightly.
    grid_scale = max(device.grid_cols, device.grid_rows) / 16.0
    net_delays: dict[tuple[str, str], float] = {}
    for net, dist, width in zip(nets, dists, widths):
        unit = timing.net_delay_ns
        loading = 1.0 + np.log2(width) / 10.0 if width > 1 else 1.0
        routed = unit * (
            _MIN_NET_DELAY_FRACTION + (dist * detour) / grid_scale * 0.25
        ) * loading
        net_delays[(net.src, net.dst)] = float(routed * device.speed_factor)

    return RoutingResult(
        net_delays_ns=net_delays,
        congestion=congestion,
        detour_factor=detour,
        total_wirelength=float(dists.sum()),
    )
